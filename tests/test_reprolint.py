"""reprolint: each checker must flag its seeded violation and pass a
clean fixture, and the real tree must be clean under the committed
baseline.

Fixture trees are built under ``tmp_path`` with files at the exact
repo-relative paths the checkers address, so the same checker code runs
unchanged over fixtures and over the real repository.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import ALL_CHECKERS  # noqa: E402
from tools.reprolint.__main__ import main  # noqa: E402
from tools.reprolint.asyncio_discipline import (  # noqa: E402
    AsyncioDisciplineChecker,
)
from tools.reprolint.cache_key_coverage import (  # noqa: E402
    CacheKeyCoverageChecker,
)
from tools.reprolint.core import (  # noqa: E402
    Finding,
    Project,
    load_baseline,
    run_checkers,
)
from tools.reprolint.errors_taxonomy import ErrorTaxonomyChecker  # noqa: E402
from tools.reprolint.hot_path import HotPathPurityChecker  # noqa: E402
from tools.reprolint.kernel_seam import KernelSeamChecker  # noqa: E402
from tools.reprolint.lock_discipline import LockDisciplineChecker  # noqa: E402
from tools.reprolint.protocol_exhaustiveness import (  # noqa: E402
    ProtocolExhaustivenessChecker,
)

BASELINE = REPO_ROOT / "tools" / "reprolint_baseline.json"


def make_project(tmp_path: Path, files: dict[str, str]) -> Project:
    """A fixture tree with files at checker-addressed relative paths."""
    for rel, content in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    return Project(tmp_path)


def idents(findings: list[Finding], code: str | None = None) -> set[str]:
    return {
        f.ident for f in findings if code is None or f.code == code
    }


# ----------------------------------------------------------------------
# The real tree
# ----------------------------------------------------------------------
def test_real_tree_clean_under_committed_baseline():
    result = run_checkers(
        ALL_CHECKERS, Project(REPO_ROOT), load_baseline(BASELINE)
    )
    assert result.clean, [f.as_dict() for f in result.findings]
    assert not result.stale, result.stale


def test_committed_baseline_entries_all_carry_reasons():
    entries = load_baseline(BASELINE)
    assert entries, "baseline should document the intentional asymmetries"
    for entry in entries:
        assert len(entry["reason"]) > 20, entry
        assert "TODO" not in entry["reason"], entry


# ----------------------------------------------------------------------
# RL101 asyncio discipline
# ----------------------------------------------------------------------
_ASYNC_BAD = """
import time

async def handle(reader, writer):
    time.sleep(0.1)
    data = open("f").read()
    return data
"""

_ASYNC_GOOD = """
import asyncio

async def handle(reader, writer):
    await asyncio.sleep(0.1)
    loop = asyncio.get_running_loop()
    result = await loop.run_in_executor(None, _work)
    return result

def _work():
    import time
    time.sleep(0.1)  # fine: runs on the executor thread
    return open("f").read()

async def nested_sync_is_exempt():
    def sync_helper():
        return open("f").read()
    return sync_helper
"""


def test_asyncio_checker_flags_blocking_calls(tmp_path):
    project = make_project(
        tmp_path, {"src/repro/service/core.py": _ASYNC_BAD}
    )
    found = AsyncioDisciplineChecker().check(project)
    assert idents(found) == {"handle:time.sleep", "handle:open"}


def test_asyncio_checker_passes_executor_idiom(tmp_path):
    project = make_project(
        tmp_path, {"src/repro/service/core.py": _ASYNC_GOOD}
    )
    assert AsyncioDisciplineChecker().check(project) == []


def test_asyncio_checker_ignores_files_outside_service(tmp_path):
    project = make_project(
        tmp_path, {"src/repro/cluster/worker.py": _ASYNC_BAD}
    )
    assert AsyncioDisciplineChecker().check(project) == []


# ----------------------------------------------------------------------
# RL201 lock discipline
# ----------------------------------------------------------------------
_LOCK_BAD = """
import threading

class Client:
    def __init__(self):
        self._lock = threading.Lock()
        self.pushed = set()
        self.stats = {}

    def connect(self):
        with self._lock:
            self.pushed = set()

    def push(self, digest):
        self.pushed.add(digest)  # guarded elsewhere, no lock here

    def note(self, k, v):
        self.stats[k] = v  # never guarded anywhere: out of scope
"""

_LOCK_GOOD = """
import threading

class Client:
    def __init__(self):
        self._lock = threading.Lock()
        self.pushed = set()
        self.count = 0

    def push(self, digest):
        with self._lock:
            self.pushed.add(digest)
            self.count += 1

    def snapshot(self):
        return len(self.pushed)  # lock-free reads are accepted
"""


def test_lock_checker_flags_unguarded_mutation_of_guarded_attr(tmp_path):
    project = make_project(
        tmp_path, {"src/repro/cluster/coordinator.py": _LOCK_BAD}
    )
    found = LockDisciplineChecker().check(project)
    assert idents(found, "RL201") == {"Client.push:pushed"}


def test_lock_checker_passes_disciplined_class(tmp_path):
    project = make_project(
        tmp_path, {"src/repro/cluster/coordinator.py": _LOCK_GOOD}
    )
    assert LockDisciplineChecker().check(project) == []


# ----------------------------------------------------------------------
# RL3xx protocol exhaustiveness
# ----------------------------------------------------------------------
_WIRE_FIXTURE = """
FEATURE_TRACE = "trace"
FEATURE_GHOST = "ghost"

class MsgType:
    HELLO = 1
    DATA = 2
    ORPHAN = 3
"""

_WORKER_FIXTURE = """
from repro.cluster import wire

def serve(sock, frame):
    if frame == wire.MsgType.HELLO:
        send_frame(sock, wire.MsgType.DATA, {"features": [wire.FEATURE_TRACE, wire.FEATURE_GHOST]})
    send_frame(sock, wire.MsgType.HELLO, {})
"""

_COORD_FIXTURE = """
from repro.cluster import wire

def run(sock, features):
    msgtype = recv(sock)
    if msgtype == wire.MsgType.DATA:
        if wire.FEATURE_TRACE in features:
            pass
"""


def test_protocol_checker_flags_unused_msgtype_and_ungated_feature(
    tmp_path,
):
    project = make_project(
        tmp_path,
        {
            "src/repro/cluster/wire.py": _WIRE_FIXTURE,
            "src/repro/cluster/worker.py": _WORKER_FIXTURE,
            "src/repro/cluster/coordinator.py": _COORD_FIXTURE,
        },
    )
    found = ProtocolExhaustivenessChecker().check(project)
    assert "MsgType.ORPHAN:encode" in idents(found, "RL301")
    assert "MsgType.ORPHAN:decode" in idents(found, "RL302")
    # HELLO and DATA each have an encode and a decode site.
    assert "MsgType.HELLO:encode" not in idents(found)
    assert "MsgType.DATA:decode" not in idents(found)
    # FEATURE_GHOST is advertised but the coordinator never gates on it.
    assert "FEATURE_GHOST:gate" in idents(found, "RL322")
    assert "FEATURE_TRACE:gate" not in idents(found)


_PROTOCOL_FIXTURE = 'OPS = ("ping", "compare")\n'
_SERVER_FIXTURE = """
def answer(op, payload):
    if op == "ping":
        return {}
    return run_compare(payload)  # documented fall-through, no literal
"""
_CLIENT_FIXTURE = """
class ServiceClient:
    def ping(self):
        return self._call("ping")

    def compare(self, request):
        return self._call("compare", request)
"""


def test_protocol_checker_flags_unhandled_service_op(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/service/protocol.py": _PROTOCOL_FIXTURE,
            "src/repro/service/server.py": _SERVER_FIXTURE,
            "src/repro/service/client.py": _CLIENT_FIXTURE,
        },
    )
    found = ProtocolExhaustivenessChecker().check(project)
    assert idents(found, "RL311") == {"op:compare:server"}
    assert idents(found, "RL312") == set()


def test_protocol_checker_flags_missing_client_method(tmp_path):
    client = 'class ServiceClient:\n    def ping(self):\n        return self._call("ping")\n'
    project = make_project(
        tmp_path,
        {
            "src/repro/service/protocol.py": _PROTOCOL_FIXTURE,
            "src/repro/service/client.py": client,
        },
    )
    found = ProtocolExhaustivenessChecker().check(project)
    assert idents(found, "RL312") == {"op:compare:client"}


# ----------------------------------------------------------------------
# RL4xx cache-key coverage
# ----------------------------------------------------------------------
_KEYS_HARDCODED = """
def _field_token(obj):
    return f"{obj.block_size}:{obj.pixel_threshold}"  # hard-coded!

def policy_token(policy):
    return _field_token(policy)

def config_token(config):
    return _field_token(config)
"""

_KEYS_DYNAMIC = """
import dataclasses

def _field_token(obj):
    parts = []
    for f in dataclasses.fields(obj):
        parts.append(f"{f.name}={getattr(obj, f.name)!r}")
    return ";".join(parts)

def policy_token(policy):
    return _field_token(policy)

def config_token(config):
    return _field_token(config)
"""

_OPTIONS_HARDCODED = """
from dataclasses import dataclass

@dataclass(frozen=True)
class CompareOptions:
    backend: str = "auto"
    block_size: int = 4096
    trace: bool = False

    def to_dict(self):
        return {"backend": self.backend, "block_size": self.block_size}
"""

_OPTIONS_DYNAMIC = """
import dataclasses
from dataclasses import dataclass

@dataclass(frozen=True)
class CompareOptions:
    backend: str = "auto"
    block_size: int = 4096
    trace: bool = False

    def to_dict(self):
        return {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
        }
"""


def test_cache_checker_flags_hardcoded_token_derivation(tmp_path):
    project = make_project(
        tmp_path, {"src/repro/cache/keys.py": _KEYS_HARDCODED}
    )
    found = CacheKeyCoverageChecker().check(project)
    assert "_field_token:dynamic" in idents(found, "RL402")


def test_cache_checker_passes_dynamic_derivation(tmp_path):
    project = make_project(
        tmp_path, {"src/repro/cache/keys.py": _KEYS_DYNAMIC}
    )
    assert CacheKeyCoverageChecker().check(project) == []


def test_cache_checker_flags_unkeyed_options_field(tmp_path):
    project = make_project(
        tmp_path, {"src/repro/api/options.py": _OPTIONS_HARDCODED}
    )
    found = CacheKeyCoverageChecker().check(project)
    assert idents(found, "RL402") == {"CompareOptions.to_dict:trace"}


def test_cache_checker_passes_dynamic_serialization(tmp_path):
    project = make_project(
        tmp_path, {"src/repro/api/options.py": _OPTIONS_DYNAMIC}
    )
    assert CacheKeyCoverageChecker().check(project) == []


_LAUNCH_COMMON = """
from dataclasses import dataclass

@dataclass(frozen=True)
class LaunchConfig:
    block_size: int = 4096
    pixel_threshold: int = 16
"""


def test_cache_checker_flags_incomplete_mirror_list(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/pixelbox/common.py": _LAUNCH_COMMON,
            "src/repro/cluster/wire.py": '_CONFIG_FIELDS = ("block_size",)\n',
        },
    )
    found = CacheKeyCoverageChecker().check(project)
    assert "_CONFIG_FIELDS:pixel_threshold" in idents(found, "RL401")


def test_cache_checker_flags_phantom_mirror_entry(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/pixelbox/common.py": _LAUNCH_COMMON,
            "src/repro/cluster/wire.py": (
                '_CONFIG_FIELDS = ("block_size", "pixel_threshold", "ghost")\n'
            ),
        },
    )
    found = CacheKeyCoverageChecker().check(project)
    assert "_CONFIG_FIELDS:+ghost" in idents(found, "RL401")


# ----------------------------------------------------------------------
# RL501 error taxonomy
# ----------------------------------------------------------------------
_SESSION_BAD = """
def run(request):
    if request is None:
        raise ValueError("no request")
"""

_SESSION_GOOD = """
from repro.errors import RequestError

def run(request):
    if request is None:
        raise RequestError("no request")
    try:
        work()
    except RequestError:
        raise  # bare re-raise is fine

def __getattr__(name):
    raise AttributeError(name)  # lazy-import protocol
"""


def test_error_checker_flags_builtin_raise_in_public_module(tmp_path):
    project = make_project(
        tmp_path, {"src/repro/session.py": _SESSION_BAD}
    )
    found = ErrorTaxonomyChecker().check(project)
    assert idents(found, "RL501") == {"run:ValueError"}


def test_error_checker_exempts_taxonomy_and_getattr(tmp_path):
    project = make_project(
        tmp_path, {"src/repro/session.py": _SESSION_GOOD}
    )
    assert ErrorTaxonomyChecker().check(project) == []


def test_error_checker_ignores_internal_modules(tmp_path):
    project = make_project(
        tmp_path, {"src/repro/pixelbox/vectorized.py": _SESSION_BAD}
    )
    assert ErrorTaxonomyChecker().check(project) == []


# ----------------------------------------------------------------------
# RL601 hot-path purity
# ----------------------------------------------------------------------
_KERNEL_BAD = """
from repro.obs.trace import Tracer, current_tracer

def run_chunk(state, lo, hi):
    tracer = current_tracer()  # per-chunk read: forbidden
    return state

def run_shard(state, shard):
    tracer = current_tracer()
    return tracer
"""

_KERNEL_GOOD = """
from repro.obs.trace import current_tracer

def run_chunk(state, lo, hi):
    return state

def run_shard(state, shard):
    tracer = current_tracer()  # the one sanctioned read, per shard
    for chunk in shard:
        run_chunk(state, *chunk)
    return tracer
"""


def test_hot_path_checker_flags_extra_import_and_stray_read(tmp_path):
    project = make_project(
        tmp_path, {"src/repro/pixelbox/kernel.py": _KERNEL_BAD}
    )
    found = HotPathPurityChecker().check(project)
    assert "import:Tracer" in idents(found, "RL601")
    assert "call:current_tracer:stray" in idents(found, "RL601")


def test_hot_path_checker_passes_single_guarded_read(tmp_path):
    project = make_project(
        tmp_path, {"src/repro/pixelbox/kernel.py": _KERNEL_GOOD}
    )
    assert HotPathPurityChecker().check(project) == []


def test_hot_path_checker_flags_double_read_in_run_shard(tmp_path):
    double = _KERNEL_GOOD.replace(
        "    for chunk in shard:",
        "    tracer = current_tracer()\n    for chunk in shard:",
    )
    project = make_project(
        tmp_path, {"src/repro/pixelbox/kernel.py": double}
    )
    found = HotPathPurityChecker().check(project)
    assert "call:current_tracer:multiple" in idents(found, "RL601")


# ----------------------------------------------------------------------
# RL701 kernel seam
# ----------------------------------------------------------------------
_SEAM_BAD = """
from repro.pixelbox.vectorized import plan_levels

def shortcut(vertices):
    return plan_levels(vertices)
"""

_SEAM_COMMENT_ONLY = """
# plan_levels is invoked via ChunkKernel, never directly from here.

def engine(kernel, vertices):
    '''Delegates to the kernel seam (see plan_levels in vectorized).'''
    return kernel.run(vertices)
"""


def test_seam_checker_flags_out_of_seam_reference(tmp_path):
    project = make_project(
        tmp_path, {"src/repro/pipeline/engine.py": _SEAM_BAD}
    )
    found = KernelSeamChecker().check(project)
    assert idents(found, "RL701") == {"plan_levels"}


def test_seam_checker_ignores_comments_and_docstrings(tmp_path):
    # The legacy regex tripped on prose; the AST port must not.
    project = make_project(
        tmp_path, {"src/repro/pipeline/engine.py": _SEAM_COMMENT_ONLY}
    )
    assert KernelSeamChecker().check(project) == []


def test_seam_checker_allowlists_the_seam_modules(tmp_path):
    project = make_project(
        tmp_path,
        {
            "src/repro/pixelbox/kernel.py": _SEAM_BAD,
            "src/repro/pixelbox/vectorized.py": "def plan_levels(v):\n    return v\n",
        },
    )
    assert KernelSeamChecker().check(project) == []


# ----------------------------------------------------------------------
# CLI: exit codes, baseline round-trip, JSON report
# ----------------------------------------------------------------------
def _seeded_tree(tmp_path: Path) -> Path:
    make_project(
        tmp_path, {"src/repro/service/core.py": _ASYNC_BAD}
    )
    return tmp_path


def test_cli_exits_nonzero_on_seeded_violation(tmp_path, capsys):
    root = _seeded_tree(tmp_path)
    assert main(["--root", str(root)]) == 1
    out = capsys.readouterr().out
    assert "RL101" in out and "time.sleep" in out


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    root = _seeded_tree(tmp_path)
    baseline = root / "tools" / "reprolint_baseline.json"
    baseline.parent.mkdir()
    assert main(["--root", str(root), "--write-baseline"]) == 0
    entries = json.loads(baseline.read_text())["entries"]
    assert {e["ident"] for e in entries} == {
        "handle:time.sleep", "handle:open"
    }
    assert main(["--root", str(root)]) == 0
    capsys.readouterr()


def test_cli_reports_stale_baseline_entries(tmp_path, capsys):
    make_project(
        tmp_path, {"src/repro/service/core.py": _ASYNC_GOOD}
    )
    baseline = tmp_path / "tools" / "reprolint_baseline.json"
    baseline.parent.mkdir()
    baseline.write_text(
        json.dumps(
            {
                "entries": [
                    {
                        "code": "RL101",
                        "path": "src/repro/service/core.py",
                        "ident": "gone:open",
                        "reason": "was fixed long ago",
                    }
                ]
            }
        )
    )
    assert main(["--root", str(tmp_path)]) == 0
    assert "stale baseline entry" in capsys.readouterr().out


def test_cli_json_report(tmp_path, capsys):
    root = _seeded_tree(tmp_path)
    report_path = tmp_path / "findings.json"
    assert main(["--root", str(root), "--json", str(report_path)]) == 1
    report = json.loads(report_path.read_text())
    codes = {f["code"] for f in report["findings"]}
    assert codes == {"RL101"}
    capsys.readouterr()


def test_cli_rejects_malformed_baseline(tmp_path, capsys):
    root = _seeded_tree(tmp_path)
    baseline = root / "tools" / "reprolint_baseline.json"
    baseline.parent.mkdir()
    baseline.write_text(json.dumps({"entries": [{"code": "RL101"}]}))
    assert main(["--root", str(root)]) == 2
    capsys.readouterr()
