"""Unit tests for the mini SDBMS: tables, plans, queries, parallelism."""

import pytest

from repro.errors import CatalogError, QueryError
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.metrics.jaccard import jaccard_pairwise
from repro.sdbms.functions import get_function, st_area
from repro.sdbms.parallel import parallel_cross_compare
from repro.sdbms.plan import (
    AvgAggregate,
    BinOp,
    Col,
    Const,
    Filter,
    Func,
    IndexNestLoopJoin,
    Project,
)
from repro.sdbms.profiler import Bucket, Profiler
from repro.sdbms.queries import (
    build_optimized_plan,
    build_unoptimized_plan,
    run_cross_compare,
)
from repro.sdbms.table import Catalog, PolygonTable


def square(x0, y0, x1, y1):
    return RectilinearPolygon.from_box(Box(x0, y0, x1, y1))


class TestCatalogAndTables:
    def test_register_and_get(self):
        catalog = Catalog()
        table = PolygonTable("cells", [square(0, 0, 2, 2)])
        catalog.register(table)
        assert catalog.get("cells") is table
        assert "cells" in catalog and catalog.names() == ["cells"]

    def test_duplicate_registration(self):
        catalog = Catalog()
        catalog.register(PolygonTable("t", []))
        with pytest.raises(CatalogError):
            catalog.register(PolygonTable("t", []))

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().get("nope")

    def test_invalid_name(self):
        with pytest.raises(CatalogError):
            PolygonTable("not a name", [])

    def test_index_requires_build(self):
        table = PolygonTable("t", [square(0, 0, 2, 2)])
        with pytest.raises(CatalogError):
            _ = table.index
        table.build_index()
        assert table.index.search(Box(0, 0, 1, 1)) == [0]

    def test_from_files(self, small_dataset):
        dir_a, _ = small_dataset
        table = PolygonTable.from_files("a", sorted(dir_a.iterdir()))
        assert len(table) > 0

    def test_chunk(self):
        table = PolygonTable("t", [square(i, 0, i + 1, 1) for i in range(10)])
        parts = table.chunk(3)
        assert sum(len(p) for p in parts) == 10
        with pytest.raises(CatalogError):
            table.chunk(0)


class TestExpressions:
    def test_col_and_const(self):
        prof = Profiler()
        assert Col("x").evaluate({"x": 5}, prof) == 5
        assert Const(7).evaluate({}, prof) == 7

    def test_unknown_column(self):
        with pytest.raises(QueryError):
            Col("missing").evaluate({}, Profiler())

    def test_binop(self):
        prof = Profiler()
        expr = BinOp("/", Const(6), Const(4))
        assert expr.evaluate({}, prof) == 1.5
        with pytest.raises(QueryError):
            BinOp("%", Const(1), Const(2))

    def test_func_with_bucket_charges_profiler(self):
        prof = Profiler()
        expr = Func("ST_Area", [Col("g")], bucket=Bucket.ST_AREA)
        assert expr.evaluate({"g": square(0, 0, 3, 3)}, prof) == 9
        assert prof.counts[Bucket.ST_AREA] == 1

    def test_unknown_function(self):
        with pytest.raises(QueryError):
            get_function("ST_Bogus")

    def test_st_area_rejects_non_geometry(self):
        with pytest.raises(QueryError):
            st_area(42)


class TestPlans:
    def test_join_emits_mbr_pairs(self):
        a = PolygonTable("a", [square(0, 0, 4, 4)])
        b = PolygonTable("b", [square(2, 2, 6, 6), square(50, 50, 51, 51)])
        rows = list(IndexNestLoopJoin(a, b).rows(Profiler()))
        assert len(rows) == 1 and rows[0]["b_id"] == 0

    def test_filter_and_project(self):
        a = PolygonTable("a", [square(0, 0, 4, 4)])
        b = PolygonTable("b", [square(2, 2, 6, 6)])
        plan = Project(
            Filter(
                IndexNestLoopJoin(a, b),
                Func("ST_Intersects", [Col("a"), Col("b")]),
            ),
            {"ai": Func("ST_Area", [Func("ST_Intersection", [Col("a"), Col("b")])])},
        )
        rows = list(plan.rows(Profiler()))
        assert rows[0]["ai"] == 4

    def test_aggregate(self):
        a = PolygonTable("a", [square(0, 0, 2, 2)])
        b = PolygonTable("b", [square(0, 0, 2, 2)])
        plan = AvgAggregate(
            Project(
                IndexNestLoopJoin(a, b),
                {"ratio": Const(0.5)},
            ),
            "ratio",
        )
        out = list(plan.rows(Profiler()))
        assert out == [{"avg": 0.5, "count": 1, "sum": 0.5}]

    def test_explain_renders_tree(self):
        a = PolygonTable("a", [])
        b = PolygonTable("b", [])
        text = build_optimized_plan(a, b).explain()
        assert "IndexNestLoopJoin" in text and "AvgAggregate" in text


class TestCrossCompareQueries:
    def test_queries_agree_with_pixelbox(self, tile_pair):
        a, b = tile_pair
        pw = jaccard_pairwise(a, b)
        unopt = run_cross_compare(a, b, optimized=False)
        opt = run_cross_compare(a, b, optimized=True)
        assert unopt.jaccard_mean == pytest.approx(pw.mean_ratio, abs=1e-12)
        assert opt.jaccard_mean == pytest.approx(pw.mean_ratio, abs=1e-12)
        assert unopt.pair_count == opt.pair_count == pw.intersecting_pairs

    def test_profile_decomposition_shape(self, tile_pair):
        a, b = tile_pair
        opt = run_cross_compare(a, b, optimized=True)
        dec = opt.profiler.decomposition()
        # The optimized query's bottleneck is the area of intersection
        # (Figure 2: ~90%); union never appears.
        assert dec[Bucket.AREA_OF_INTERSECTION] > 0.4
        assert Bucket.AREA_OF_UNION not in dec
        assert dec.get(Bucket.INDEX_BUILD, 0) < 0.25

    def test_unoptimized_profile_has_union(self, tile_pair):
        a, b = tile_pair
        unopt = run_cross_compare(a, b, optimized=False)
        dec = unopt.profiler.decomposition()
        assert Bucket.AREA_OF_UNION in dec
        assert Bucket.ST_INTERSECTS in dec

    def test_report_renders(self, tile_pair):
        a, b = tile_pair
        res = run_cross_compare(a[:10], b[:10], optimized=True)
        assert "total wall time" in res.profiler.report()

    def test_empty_tables(self):
        res = run_cross_compare([], [], optimized=True)
        assert res.jaccard_mean == 0.0 and res.pair_count == 0


class TestParallel:
    def test_parallel_matches_serial(self, tile_pair):
        a, b = tile_pair
        serial = run_cross_compare(a, b, optimized=True)
        par = parallel_cross_compare(a, b, workers=2, streams=4)
        assert par.jaccard_mean == pytest.approx(serial.jaccard_mean, abs=1e-12)
        assert par.pair_count == serial.pair_count

    def test_single_worker_shortcut(self, tile_pair):
        a, b = tile_pair
        par = parallel_cross_compare(a, b, workers=1)
        assert par.streams == 1

    def test_tiny_input_shortcut(self):
        a = [square(0, 0, 2, 2)]
        par = parallel_cross_compare(a, a, workers=4, streams=16)
        assert par.streams == 1 and par.jaccard_mean == 1.0

    def test_validation(self, tile_pair):
        a, b = tile_pair
        with pytest.raises(QueryError):
            parallel_cross_compare(a, b, workers=0)
        with pytest.raises(QueryError):
            parallel_cross_compare(a, b, streams=0)
