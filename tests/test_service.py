"""Edge-case and parity tests for the async comparison service.

The load-bearing guarantee: the micro-batching coalescer changes *when*
pairs are computed, never *what* — a merged dispatch is bit-for-bit the
same as per-request ``compare_pairs`` calls.  Around that, the admission
and cancellation paths the issue names: queue-full rejection, timeout
while a batch is in flight, cancellation mid-batch, and graceful
shutdown draining every accepted request.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.backends import get_backend
from repro.backends.base import BackendLifecycle
from repro.data.synth import generate_tile_pair
from repro.errors import (
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.gpu.cost import recommend_batch_pairs
from repro.index.join import mbr_pair_join
from repro.service import ComparisonService, ServiceConfig


def _request_chunks(n_chunks: int = 6, chunk: int = 12):
    """Small concurrent-request workloads from one synthetic tile."""
    set_a, set_b = generate_tile_pair(seed=77, nuclei=120, width=384, height=384)
    pairs = mbr_pair_join(set_a, set_b).pairs(set_a, set_b)
    assert len(pairs) >= n_chunks * chunk
    return [pairs[i * chunk : (i + 1) * chunk] for i in range(n_chunks)]


class SlowBackend(BackendLifecycle):
    """Test double: correct results, controllable latency."""

    name = "slow-stub"
    description = "delegates to batch after a fixed delay"

    def __init__(self, delay: float = 0.2):
        self.delay = delay
        self.calls = 0
        self.closed = False
        self._inner = get_backend("batch")

    def compare_pairs(self, pairs, config=None):
        self.calls += 1
        time.sleep(self.delay)
        return self._inner.compare_pairs(pairs, config)

    def close(self):
        self.closed = True


class TestConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ServiceError):
            ServiceConfig(max_queue=0)
        with pytest.raises(ServiceError):
            ServiceConfig(max_batch_pairs=0)
        with pytest.raises(ServiceError):
            ServiceConfig(coalesce_window=-0.1)
        with pytest.raises(ServiceError):
            ServiceConfig(default_timeout=0.0)

    def test_submit_before_start_raises(self):
        async def main():
            service = ComparisonService()
            with pytest.raises(ServiceClosedError):
                await service.submit([])

        asyncio.run(main())

    def test_backend_rejecting_options_fails_with_service_error(self):
        """`--workers` against a factory that takes none must not
        surface as a bare constructor TypeError."""

        async def main():
            config = ServiceConfig(
                backend="batch", backend_options={"workers": 4}
            )
            with pytest.raises(ServiceError, match="rejected options"):
                await ComparisonService(config).start()

        asyncio.run(main())


class TestCoalescedParity:
    def test_coalesced_equals_sequential_bit_for_bit(self):
        """Merged dispatches return exactly what per-request calls do."""
        chunks = _request_chunks()

        async def main():
            config = ServiceConfig(backend="batch", coalesce_window=0.05)
            async with ComparisonService(config) as service:
                results = await asyncio.gather(
                    *(service.submit(c) for c in chunks)
                )
                snap = service.snapshot()
            return results, snap

        results, snap = asyncio.run(main())
        reference = get_backend("batch")
        for chunk, got in zip(chunks, results):
            want = reference.compare_pairs(chunk)
            assert np.array_equal(got.intersection, want.intersection)
            assert np.array_equal(got.union, want.union)
            assert np.array_equal(got.area_p, want.area_p)
            assert np.array_equal(got.area_q, want.area_q)
            assert got.stats.pairs == len(chunk)
        # The point of the service: concurrent requests shared dispatches.
        assert snap.batches < snap.requests
        assert snap.completed == len(chunks)
        assert snap.pairs == sum(len(c) for c in chunks)

    def test_mismatched_configs_do_not_share_a_dispatch(self):
        from repro.pixelbox.common import LaunchConfig

        chunks = _request_chunks(n_chunks=2)
        cfg_b = LaunchConfig(block_size=16)

        async def main():
            config = ServiceConfig(backend="batch", coalesce_window=0.05)
            async with ComparisonService(config) as service:
                got_a, got_b = await asyncio.gather(
                    service.submit(chunks[0]),
                    service.submit(chunks[1], config=cfg_b),
                )
                snap = service.snapshot()
            return got_a, got_b, snap

        got_a, got_b, snap = asyncio.run(main())
        reference = get_backend("batch")
        want_a = reference.compare_pairs(chunks[0])
        want_b = reference.compare_pairs(chunks[1], cfg_b)
        assert np.array_equal(got_a.intersection, want_a.intersection)
        assert np.array_equal(got_b.intersection, want_b.intersection)
        assert snap.batches == 2  # incompatible configs kept apart


class TestAdmissionControl:
    def test_queue_full_rejects_immediately(self):
        chunks = _request_chunks(n_chunks=3)
        backend = SlowBackend(delay=0.3)

        async def main():
            config = ServiceConfig(max_queue=1, coalesce_window=0.0)
            async with ComparisonService(config, backend=backend) as service:
                first = asyncio.ensure_future(service.submit(chunks[0]))
                await asyncio.sleep(0.1)  # dispatcher is now mid-batch
                second = asyncio.ensure_future(service.submit(chunks[1]))
                await asyncio.sleep(0)  # let it occupy the single slot
                with pytest.raises(ServiceOverloadedError):
                    await service.submit(chunks[2])
                snap = service.snapshot()
                await asyncio.gather(first, second)
            return snap

        snap = asyncio.run(main())
        assert snap.rejected == 1

    def test_timeout_while_batch_in_flight(self):
        chunks = _request_chunks(n_chunks=2)
        backend = SlowBackend(delay=0.4)

        async def main():
            async with ComparisonService(backend=backend) as service:
                with pytest.raises(asyncio.TimeoutError):
                    await service.submit(chunks[0], timeout=0.05)
                # The service survives an abandoned request: the next
                # one is answered normally by the same warm backend.
                result = await service.submit(chunks[1])
                snap = service.snapshot()
            return result, snap

        result, snap = asyncio.run(main())
        want = get_backend("batch").compare_pairs(chunks[1])
        assert np.array_equal(result.intersection, want.intersection)
        assert snap.timeouts == 1
        assert snap.completed == 1

    def test_cancellation_mid_batch_spares_co_riders(self):
        chunks = _request_chunks(n_chunks=2)
        backend = SlowBackend(delay=0.3)

        async def main():
            config = ServiceConfig(coalesce_window=0.05)
            async with ComparisonService(config, backend=backend) as service:
                doomed = asyncio.ensure_future(service.submit(chunks[0]))
                survivor = asyncio.ensure_future(service.submit(chunks[1]))
                await asyncio.sleep(0.15)  # both coalesced, batch in flight
                doomed.cancel()
                result = await survivor
                with pytest.raises(asyncio.CancelledError):
                    await doomed
                snap = service.snapshot()
            return result, snap

        result, snap = asyncio.run(main())
        want = get_backend("batch").compare_pairs(chunks[1])
        assert np.array_equal(result.intersection, want.intersection)
        assert np.array_equal(result.union, want.union)
        assert backend.calls == 1  # one merged dispatch served both
        assert snap.cancelled == 1
        assert snap.completed == 1


class TestShutdown:
    def test_graceful_close_drains_accepted_requests(self):
        chunks = _request_chunks(n_chunks=3)
        backend = SlowBackend(delay=0.05)

        async def main():
            service = await ComparisonService(backend=backend).start()
            submitted = [
                asyncio.ensure_future(service.submit(c)) for c in chunks
            ]
            await asyncio.sleep(0)  # all three are in the queue
            await service.close()  # graceful: drain before releasing
            assert all(task.done() for task in submitted)
            results = [task.result() for task in submitted]
            with pytest.raises(ServiceClosedError):
                await service.submit(chunks[0])
            return results

        results = asyncio.run(main())
        reference = get_backend("batch")
        for chunk, got in zip(chunks, results):
            want = reference.compare_pairs(chunk)
            assert np.array_equal(got.intersection, want.intersection)
        assert backend.closed

    def test_abort_close_cancels_pending(self):
        chunks = _request_chunks(n_chunks=2)
        backend = SlowBackend(delay=0.3)

        async def main():
            service = await ComparisonService(backend=backend).start()
            in_flight = asyncio.ensure_future(service.submit(chunks[0]))
            await asyncio.sleep(0.1)  # first request is mid-batch
            queued = asyncio.ensure_future(service.submit(chunks[1]))
            await asyncio.sleep(0)
            await service.close(drain=False)
            with pytest.raises(asyncio.CancelledError):
                await queued
            with pytest.raises(asyncio.CancelledError):
                await in_flight
            return True

        assert asyncio.run(main())
        assert backend.closed

    def test_close_is_idempotent(self):
        async def main():
            service = await ComparisonService().start()
            await service.close()
            await service.close()
            return True

        assert asyncio.run(main())


class TestWarmMultiprocessService:
    def test_service_pools_persistent_multiprocess_backend(self):
        """The service puts the multiprocess backend in persistent mode
        and one warm pool serves every request."""
        chunks = _request_chunks(n_chunks=4)

        async def main():
            config = ServiceConfig(
                backend="multiprocess",
                backend_options={"workers": 2, "min_pairs": 1},
                coalesce_window=0.05,
            )
            async with ComparisonService(config) as service:
                assert service.backend.persistent
                warm_pids = service.backend.warm()  # already-warm pool
                results = await asyncio.gather(
                    *(service.submit(c) for c in chunks)
                )
                after_pids = service.backend.warm()
            return warm_pids, after_pids, results

        warm_pids, after_pids, results = asyncio.run(main())
        assert warm_pids == after_pids  # same workers across requests
        reference = get_backend("batch")
        for chunk, got in zip(chunks, results):
            want = reference.compare_pairs(chunk)
            assert np.array_equal(got.intersection, want.intersection)
            assert np.array_equal(got.union, want.union)


class TestPoisonRequest:
    def test_unprofilable_request_fails_alone(self):
        """A request whose pairs cannot be profiled errors out without
        killing the dispatcher; the service keeps serving."""
        chunks = _request_chunks(n_chunks=1)

        async def main():
            async with ComparisonService() as service:
                with pytest.raises(AttributeError):
                    await service.submit([("not", "a polygon")])
                # The dispatcher survived: a valid request still works.
                result = await service.submit(chunks[0])
                snap = service.snapshot()
            return result, snap

        result, snap = asyncio.run(main())
        want = get_backend("batch").compare_pairs(chunks[0])
        assert np.array_equal(result.intersection, want.intersection)
        assert snap.failures == 1
        assert snap.completed == 1


class TestWarmAutoService:
    def test_auto_backend_caches_delegates(self):
        """`--backend auto` pools too: delegates are constructed once
        and the multiprocess delegate inherits persistence."""
        chunks = _request_chunks(n_chunks=2)

        async def main():
            config = ServiceConfig(backend="auto", coalesce_window=0.05)
            async with ComparisonService(config) as service:
                assert service.backend.persistent
                first = await service.submit(chunks[0])
                delegate = service.backend._delegates[
                    service.backend.last_choice
                ]
                second = await service.submit(chunks[1])
                assert (
                    service.backend._delegates[service.backend.last_choice]
                    is delegate
                )
            return first, second

        first, second = asyncio.run(main())
        reference = get_backend("batch")
        for chunk, got in zip(chunks, (first, second)):
            want = reference.compare_pairs(chunk)
            assert np.array_equal(got.intersection, want.intersection)


class TestBatchSizingPolicy:
    def test_budget_shrinks_with_pair_cost(self):
        cheap = recommend_batch_pairs(8.0, 64.0, 2048)
        dense = recommend_batch_pairs(400.0, 1.0e6, 2048)
        assert cheap > dense

    def test_budget_is_bounded(self):
        assert recommend_batch_pairs(0.0, 0.0, 2048) == 65536
        assert recommend_batch_pairs(1e9, 1e12, 2048) == 64
