"""End-to-end tests for the ``repro serve`` front-end.

A real asyncio TCP server runs in a background thread; blocking
:class:`~repro.service.client.ServiceClient` connections drive it the
way external callers would.  Covers: wire parity against a direct
backend call, request coalescing across connections, protocol error
classification, graceful shutdown, and the stdio session via an actual
``python -m repro serve --stdio`` subprocess (which also exercises the
CLI path).
"""

from __future__ import annotations

import json
import os
import queue
import socket
import subprocess
import sys
import threading

import asyncio

import numpy as np
import pytest

from repro.backends import get_backend
from repro.data.synth import generate_tile_pair
from repro.errors import ServiceError
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.wkt import polygon_to_wkt
from repro.index.join import mbr_pair_join
from repro.service import ServiceClient, ServiceConfig, serve


@pytest.fixture(scope="module")
def tile_pairs():
    set_a, set_b = generate_tile_pair(seed=5, nuclei=60, width=256, height=256)
    return mbr_pair_join(set_a, set_b).pairs(set_a, set_b)


@pytest.fixture()
def server():
    """A live TCP server on an ephemeral port; yields (host, port)."""
    announced: queue.Queue[str] = queue.Queue()
    done: queue.Queue[BaseException | None] = queue.Queue()

    def run():
        try:
            asyncio.run(
                serve(
                    ServiceConfig(backend="batch", coalesce_window=0.02),
                    port=0,
                    announce=announced.put,
                )
            )
            done.put(None)
        except BaseException as exc:  # pragma: no cover - surfaced below
            done.put(exc)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    _, _, host, port = announced.get(timeout=20).split()
    yield host, int(port)
    if thread.is_alive():
        with ServiceClient(host, int(port)) as client:
            client.shutdown()
    thread.join(timeout=20)
    assert not thread.is_alive(), "server thread did not exit"
    error = done.get(timeout=5)
    assert error is None, f"server raised: {error!r}"


class TestTcpServer:
    def test_compare_matches_direct_backend(self, server, tile_pairs):
        host, port = server
        pairs = tile_pairs[:30]
        with ServiceClient(host, port) as client:
            assert client.ping()
            got = client.compare(pairs)
        want = get_backend("batch").compare_pairs(pairs)
        assert np.array_equal(got["intersection"], want.intersection)
        assert np.array_equal(got["union"], want.union)
        assert np.array_equal(got["area_p"], want.area_p)
        assert np.array_equal(got["area_q"], want.area_q)
        assert np.allclose(got["jaccard"], want.ratios())

    def test_concurrent_clients_coalesce(self, server, tile_pairs):
        host, port = server
        pairs = tile_pairs[:20]
        results: dict[int, dict] = {}

        def worker(i: int) -> None:
            with ServiceClient(host, port) as client:
                results[i] = client.compare(pairs)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(5)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        want = get_backend("batch").compare_pairs(pairs)
        assert len(results) == 5
        for got in results.values():
            assert np.array_equal(got["intersection"], want.intersection)
        with ServiceClient(host, port) as client:
            stats = client.stats()
        # Wire requests flowed through the coalescer; with 5 concurrent
        # clients at least some dispatches must have merged requests.
        assert stats["requests"] >= 5
        assert stats["batches"] <= stats["requests"]

    def test_compare_with_config_and_per_request_timeout(
        self, server, tile_pairs
    ):
        host, port = server
        pairs = tile_pairs[:10]
        with ServiceClient(host, port) as client:
            got = client.compare(pairs, config={"block_size": 16}, timeout=30)
        from repro.pixelbox.common import LaunchConfig

        want = get_backend("batch").compare_pairs(
            pairs, LaunchConfig(block_size=16)
        )
        assert np.array_equal(got["intersection"], want.intersection)

    def test_protocol_errors_are_classified(self, server):
        host, port = server
        with socket.create_connection((host, port), timeout=10) as sock:
            f = sock.makefile("rwb")

            def roundtrip(raw: bytes) -> dict:
                f.write(raw + b"\n")
                f.flush()
                return json.loads(f.readline())

            bad_json = roundtrip(b"this is not json")
            assert bad_json["ok"] is False
            assert bad_json["kind"] == "bad-request"

            bad_op = roundtrip(json.dumps({"id": 1, "op": "explode"}).encode())
            assert bad_op["ok"] is False and bad_op["id"] == 1
            assert bad_op["kind"] == "bad-request"

            bad_wkt = roundtrip(
                json.dumps(
                    {"id": 2, "op": "compare", "pairs": [["nope", "nope"]]}
                ).encode()
            )
            assert bad_wkt["ok"] is False and bad_wkt["kind"] == "bad-request"

            # A malformed timeout must be rejected before the request is
            # admitted (not surface later as an "internal" failure).
            bad_timeout = roundtrip(
                json.dumps(
                    {
                        "id": 3,
                        "op": "compare",
                        "pairs": [["x", "y"]],
                        "timeout": "5",
                    }
                ).encode()
            )
            assert bad_timeout["ok"] is False
            assert bad_timeout["kind"] == "bad-request"
            assert "timeout" in bad_timeout["error"]

    def test_client_rejects_mismatched_response_id(self, server):
        host, port = server
        client = ServiceClient(host, port)
        try:
            client._next_id = 41  # next request goes out as id 42
            # Sneak a raw request in so the server answers an id the
            # client bookkeeping does not expect.
            client._file.write(
                json.dumps({"id": 999, "op": "ping"}).encode() + b"\n"
            )
            client._file.flush()
            with pytest.raises(ServiceError):
                client.ping()
        finally:
            client.close()


@pytest.fixture()
def cached_server():
    """A TCP server with the request cache enabled; yields (host, port)."""
    announced: queue.Queue[str] = queue.Queue()
    done: queue.Queue[BaseException | None] = queue.Queue()

    def run():
        try:
            asyncio.run(
                serve(
                    ServiceConfig(
                        backend="batch", coalesce_window=0.02, cache=True
                    ),
                    port=0,
                    announce=announced.put,
                )
            )
            done.put(None)
        except BaseException as exc:  # pragma: no cover - surfaced below
            done.put(exc)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    _, _, host, port = announced.get(timeout=20).split()
    yield host, int(port)
    if thread.is_alive():
        with ServiceClient(host, int(port)) as client:
            client.shutdown()
    thread.join(timeout=20)
    assert not thread.is_alive(), "server thread did not exit"
    error = done.get(timeout=5)
    assert error is None, f"server raised: {error!r}"


class TestCachedServer:
    def test_warm_requests_hit_and_cache_clear_resets(
        self, cached_server, tile_pairs
    ):
        host, port = cached_server
        pairs = tile_pairs[:25]
        with ServiceClient(host, port) as client:
            cold = client.compare(pairs)
            warm = client.compare(pairs)
            for field in ("intersection", "union", "area_p", "area_q"):
                assert np.array_equal(cold[field], warm[field])
            stats = client.stats()
            assert stats["request_cache_hits"] == 1
            assert stats["request_cache_misses"] == 1
            assert stats["caches"]["service.request"]["entries"] == 1
            assert client.cache_clear()
            stats = client.stats()
            assert stats["caches"]["service.request"]["entries"] == 0
            # Recomputed after the clear — and bit-for-bit identical.
            again = client.compare(pairs)
            assert np.array_equal(cold["intersection"], again["intersection"])
            assert client.stats()["request_cache_misses"] == 2


class TestStdioServer:
    def test_stdio_session_over_subprocess(self, tile_pairs):
        """`python -m repro serve --stdio`: serve a session, exit cleanly
        when stdin closes (the CLI path end to end)."""
        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        unit = polygon_to_wkt(RectilinearPolygon.from_box(Box(0, 0, 4, 4)))
        half = polygon_to_wkt(RectilinearPolygon.from_box(Box(0, 0, 4, 2)))
        lines = [
            json.dumps({"id": 1, "op": "ping"}),
            json.dumps(
                {"id": 2, "op": "compare", "pairs": [[unit, half]]}
            ),
            json.dumps({"id": 3, "op": "stats"}),
        ]
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--stdio"],
            input="\n".join(lines) + "\n",
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        out_lines = [l for l in proc.stdout.splitlines() if l.strip()]
        assert out_lines[0] == "repro-serve ready stdio"
        responses = {r["id"]: r for r in map(json.loads, out_lines[1:])}
        assert responses[1]["ok"] and responses[1]["pong"]
        assert responses[2]["ok"]
        assert responses[2]["intersection"] == [8]
        assert responses[2]["union"] == [16]
        assert responses[3]["ok"]
        # Lines are pipelined, so the stats request may be answered while
        # the compare is still in flight — assert on admission, which is
        # ordered, not on completion.
        assert responses[3]["stats"]["requests"] == 1
