"""Tests for the session-centric front door.

Covers the three contract families of :class:`repro.Session`:

* **lifecycle** — lazy backend resolution, ``warm()``, idempotent
  ``close()``, a clear error on reuse-after-close, and no leaked worker
  processes or shared-memory segments once a session is closed;
* **parity** — session results are bit-for-bit equal to the legacy
  metrics-layer path on *every* registry backend (cluster included),
  and the incremental/async entry points equal the synchronous one;
* **deprecation shims** — ``cross_compare`` / ``cross_compare_files``
  emit :class:`DeprecationWarning` and return bit-for-bit identical
  results to the session API.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time

import numpy as np
import pytest

from repro.api import (
    CompareOptions,
    CompareRequest,
    Session,
    cross_compare,
    cross_compare_files,
    explain,
)
from repro.backends import available_backends
from repro.errors import RequestError, SessionClosedError
from repro.geometry.box import Box
from repro.geometry.polygon import RectilinearPolygon
from repro.metrics.jaccard import jaccard_pairwise


def _square(x: int, y: int, side: int = 6) -> RectilinearPolygon:
    return RectilinearPolygon.from_box(Box(x, y, x + side, y + side))


PAIRS = [
    (_square(0, 0), _square(3, 3)),
    (_square(0, 0), _square(100, 100)),
    (_square(0, 0, 12), _square(2, 2, 3)),
    (_square(5, 5), _square(5, 5)),
]


def _assert_no_worker_processes(timeout: float = 5.0) -> None:
    """Every pooled worker process has exited (post-close invariant)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return
        time.sleep(0.05)
    raise AssertionError(
        f"leaked worker processes: {multiprocessing.active_children()}"
    )


class TestLifecycle:
    def test_backend_resolved_lazily(self):
        session = Session(CompareOptions(backend="vectorized"))
        assert session._backend is None
        _ = session.backend
        assert session._backend is not None
        session.close()

    def test_context_manager_closes(self):
        with Session() as session:
            session.compare(PAIRS)
            assert not session.closed
        assert session.closed

    def test_double_close_is_safe(self):
        session = Session()
        session.compare(PAIRS)
        session.close()
        session.close()  # idempotent

    def test_reuse_after_close_raises_clearly(self):
        session = Session()
        session.close()
        with pytest.raises(SessionClosedError, match="closed"):
            session.compare(PAIRS)
        with pytest.raises(SessionClosedError):
            session.compare_files("a", "b")
        with pytest.raises(SessionClosedError):
            _ = session.backend

    def test_close_releases_multiprocess_pool(self):
        options = CompareOptions(
            backend="multiprocess", backend_options={"min_pairs": 1}
        )
        with Session(options) as session:
            areas = session.compare(PAIRS)
            assert len(areas) == len(PAIRS)
        _assert_no_worker_processes()

    def test_warm_prespawns_and_close_reaps(self):
        options = CompareOptions(
            backend="multiprocess", backend_options={"min_pairs": 1}
        )
        session = Session(options).warm()
        assert multiprocessing.active_children()  # pool is up
        session.close()
        _assert_no_worker_processes()

    def test_session_overrides_shorthand(self):
        session = Session(backend="scalar")
        assert session.options.backend == "scalar"
        session.close()

    def test_invalid_backend_fails_on_first_use(self):
        session = Session(backend="not-a-backend")
        from repro.errors import KernelError

        with pytest.raises(KernelError, match="unknown backend"):
            session.compare(PAIRS)
        session.close()


class TestParity:
    """Session results == legacy metrics path, on every backend."""

    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_compare_sets_matches_legacy_path(self, backend, tile_pair):
        from repro.backends import backend_availability

        reason = backend_availability(backend)
        if reason is not None:
            pytest.skip(reason)
        set_a, set_b = tile_pair
        legacy = jaccard_pairwise(set_a, set_b, backend=backend)
        with Session(backend=backend) as session:
            result = session.compare_sets(set_a, set_b)
        assert result.jaccard_mean == legacy.mean_ratio  # bit-for-bit
        assert result.intersecting_pairs == legacy.intersecting_pairs
        assert result.candidate_pairs == legacy.candidate_pairs
        assert result.missing_a == legacy.missing_a
        assert result.missing_b == legacy.missing_b

    def test_stream_equals_compare(self):
        with Session() as session:
            whole = session.compare(PAIRS)
            streamed = list(session.stream(PAIRS, shard_pairs=2))
        assert [o.index for o in streamed] == list(range(len(PAIRS)))
        np.testing.assert_array_equal(
            [o.intersection for o in streamed], whole.intersection
        )
        np.testing.assert_array_equal(
            [o.union for o in streamed], whole.union
        )
        np.testing.assert_array_equal(
            [o.area_p for o in streamed], whole.area_p
        )
        np.testing.assert_array_equal(
            [o.area_q for o in streamed], whole.area_q
        )

    def test_stream_sizes_shards_from_cost_model(self):
        with Session() as session:
            streamed = list(session.stream(PAIRS))
        assert len(streamed) == len(PAIRS)
        with Session() as session:
            assert list(session.stream([])) == []
        with Session() as session:
            with pytest.raises(RequestError):
                list(session.stream(PAIRS, shard_pairs=0))

    @pytest.mark.parametrize("bad", [0, -5])
    def test_stream_async_validates_shard_pairs(self, bad):
        async def go():
            with Session() as session:
                async for _ in session.stream_async(PAIRS, shard_pairs=bad):
                    pass

        with pytest.raises(RequestError):
            asyncio.run(go())

    def test_submit_async_equals_compare(self):
        async def go():
            with Session() as session:
                return await session.submit(PAIRS)

        areas = asyncio.run(go())
        with Session() as session:
            expected = session.compare(PAIRS)
        np.testing.assert_array_equal(areas.intersection, expected.intersection)
        np.testing.assert_array_equal(areas.union, expected.union)

    def test_stream_async_equals_compare(self):
        async def go():
            out = []
            with Session() as session:
                async for outcome in session.stream_async(
                    PAIRS, shard_pairs=3
                ):
                    out.append(outcome)
            return out

        streamed = asyncio.run(go())
        with Session() as session:
            whole = session.compare(PAIRS)
        np.testing.assert_array_equal(
            [o.intersection for o in streamed], whole.intersection
        )

    def test_run_dispatches_on_kind(self, tile_pair):
        set_a, set_b = tile_pair
        with Session() as session:
            by_run = session.run(CompareRequest.from_sets(set_a, set_b))
            direct = session.compare_sets(set_a, set_b)
        assert by_run.jaccard_mean == direct.jaccard_mean
        assert by_run.intersecting_pairs == direct.intersecting_pairs

    def test_per_call_options_override_session(self):
        with Session(backend="batch") as session:
            a = session.compare(PAIRS, CompareOptions(backend="scalar"))
            b = session.compare(PAIRS)
        np.testing.assert_array_equal(a.intersection, b.intersection)
        np.testing.assert_array_equal(a.union, b.union)


class TestCompareFiles:
    def test_session_files_matches_legacy_bit_for_bit(self, small_dataset):
        dir_a, dir_b = small_dataset
        with Session() as session:
            result = session.compare_files(dir_a, dir_b)
        with pytest.deprecated_call():
            legacy = cross_compare_files(dir_a, dir_b)
        # Per-pair areas are exact integers on every path; the mean's
        # float summation order follows tile completion order (threaded
        # pipeline), so it is reproducible only to rounding.
        assert result.jaccard_mean == pytest.approx(
            legacy.jaccard_mean, rel=1e-12
        )
        assert result.intersecting_pairs == legacy.intersecting_pairs
        assert result.candidate_pairs == legacy.candidate_pairs
        assert result.missing_a == legacy.missing_a
        assert result.missing_b == legacy.missing_b
        assert result.tiles == legacy.tiles
        # The session result additionally reports performance accounting.
        assert result.wall_seconds > 0
        assert result.input_bytes > 0
        assert result.throughput > 0

    def test_files_request_honors_every_pipeline_knob(self, small_dataset):
        dir_a, dir_b = small_dataset
        options = CompareOptions(
            buffer_capacity=2, batch_pairs=64, migration=True,
            parser_workers=1,
        )
        with Session(options) as session:
            migrated = session.compare_files(dir_a, dir_b)
        with Session() as session:
            plain = session.compare_files(dir_a, dir_b)
        # Migration and pipeline shape are performance knobs, never
        # semantics: integer aggregates agree exactly; the float mean's
        # summation order follows batch/tile completion order.
        assert migrated.intersecting_pairs == plain.intersecting_pairs
        assert migrated.candidate_pairs == plain.candidate_pairs
        assert migrated.missing_a == plain.missing_a
        assert migrated.missing_b == plain.missing_b
        assert migrated.jaccard_mean == pytest.approx(
            plain.jaccard_mean, rel=1e-12
        )


class TestDeprecationShims:
    def test_cross_compare_warns_and_matches(self, tile_pair):
        set_a, set_b = tile_pair
        with Session() as session:
            result = session.compare_sets(set_a, set_b)
        with pytest.deprecated_call():
            legacy = cross_compare(set_a, set_b)
        assert legacy.jaccard_mean == result.jaccard_mean
        assert legacy.intersecting_pairs == result.intersecting_pairs
        assert legacy.candidate_pairs == result.candidate_pairs
        assert legacy.missing_a == result.missing_a
        assert legacy.missing_b == result.missing_b

    @pytest.mark.parametrize("backend", ["scalar", "vectorized", "batch"])
    def test_cross_compare_backend_kwarg_still_works(self, backend):
        set_a = [p for p, _ in PAIRS]
        set_b = [q for _, q in PAIRS]
        with pytest.deprecated_call():
            legacy = cross_compare(set_a, set_b, backend=backend)
        reference = jaccard_pairwise(set_a, set_b, backend=backend)
        assert legacy.jaccard_mean == reference.mean_ratio

    def test_cross_compare_files_warns(self, small_dataset):
        dir_a, dir_b = small_dataset
        with pytest.deprecated_call():
            cross_compare_files(dir_a, dir_b, parser_workers=1)

    def test_lazy_top_level_exports(self):
        import repro

        assert repro.Session is Session
        assert callable(repro.cross_compare)
        assert repro.CompareOptions is CompareOptions
        with pytest.raises(AttributeError):
            _ = repro.not_a_symbol


class TestExplain:
    def test_explain_does_not_execute(self):
        request = CompareRequest.from_pairs(
            PAIRS,
            CompareOptions(
                backend="multiprocess", backend_options={"min_pairs": 1}
            ),
        )
        session = Session()
        plan = session.explain(request)
        # Planning must not spawn workers or resolve the session backend.
        assert session._backend is None
        assert not multiprocessing.active_children()
        session.close()
        assert plan.kind == "pairs"
        assert plan.backend == "multiprocess"
        assert plan.resolved_backend == "multiprocess"
        assert plan.n_pairs == len(PAIRS)
        assert plan.shard_pairs is not None
        assert plan.capabilities["configurable_workers"] is True
        assert plan.launch["tight_mbr"] is True

    def test_explain_resolves_auto(self):
        plan = explain(
            CompareRequest.from_pairs(PAIRS, CompareOptions(backend="auto"))
        )
        assert plan.backend == "auto"
        assert plan.resolved_backend in ("batch", "vectorized", "multiprocess")
        assert plan.coalesce_pairs >= 64

    def test_explain_cluster_reports_hosts(self):
        plan = explain(
            CompareRequest.from_pairs(
                PAIRS,
                CompareOptions(backend="cluster", hosts="h1:9001,h2:9002"),
            )
        )
        assert plan.hosts == ("h1:9001", "h2:9002")
        assert not multiprocessing.active_children()

    def test_explain_cluster_loopback_note(self, monkeypatch):
        monkeypatch.delenv("REPRO_CLUSTER_HOSTS", raising=False)
        plan = explain(
            CompareRequest.from_pairs(PAIRS, CompareOptions(backend="cluster"))
        )
        assert plan.hosts == ("loopback",)
        assert any("loopback" in note for note in plan.notes)

    def test_explain_files_counts_tiles(self, small_dataset):
        dir_a, dir_b = small_dataset
        plan = explain(CompareRequest.from_files(dir_a, dir_b))
        assert plan.kind == "files"
        assert plan.tiles == 4
        assert plan.n_pairs is None

    def test_explain_sets_profiles_workload(self, tile_pair):
        set_a, set_b = tile_pair
        plan = explain(CompareRequest.from_sets(set_a, set_b))
        assert plan.kind == "sets"
        assert plan.n_pairs > 0
        assert plan.mean_edges > 0

    def test_explain_rejects_bad_spec(self):
        from repro.errors import KernelError

        with pytest.raises(KernelError):
            explain(
                CompareRequest.from_pairs(
                    PAIRS, CompareOptions(backend="no-such-backend")
                )
            )
        with pytest.raises(KernelError):
            # batch takes no worker option; explain surfaces the named
            # registry error instead of executing and failing later.
            explain(
                CompareRequest.from_pairs(
                    PAIRS,
                    CompareOptions(
                        backend="batch", backend_options={"workers": 4}
                    ),
                )
            )
