"""Per-session cost-profile isolation (the global-leak regression).

``Session._apply_cost_profile`` used to install a session's profile with
``set_calibration()`` — mutating process-global state, so the *last*
session to resolve its options silently re-planned every other session
in the process, and ``close()`` wiped whatever profile the environment
had configured.  These tests pin the fixed contract: calibration is
loaded per options and threaded explicitly, two sessions with different
profiles plan differently *at the same time*, and no entry point leaves
a trace in :mod:`repro.gpu.cost`'s module state.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import CompareOptions, CompareRequest, Session, explain
from repro.gpu import cost

from conftest import random_pair


def _write_profile(path, *, dispatch: float, source: str) -> str:
    path.write_text(
        json.dumps(
            {
                "cycles_per_second": 1.0e9,
                "process_spinup_cycles": 1.0e8,
                "shard_dispatch_cycles": dispatch,
                "source": source,
            }
        )
    )
    return str(path)


@pytest.fixture
def pairs_request_factory(tmp_path):
    """Builds the same pairs request under different cost profiles."""
    rng = np.random.default_rng(20260807)
    pairs = [random_pair(rng) for _ in range(64)]

    def build(profile: str | None) -> CompareRequest:
        options = CompareOptions(
            backend="multiprocess",
            backend_options={"workers": 4, "min_pairs": 1},
            cost_profile=profile,
        )
        return CompareRequest.from_pairs(pairs, options)

    return build


def test_two_sessions_with_different_profiles_plan_differently(
    tmp_path, pairs_request_factory
):
    """Both sessions are open at once; each plans by its own profile."""
    # A tiny dispatch charge lets shards shrink to the per-worker target;
    # a huge one forces the whole request into one shard.
    cheap = _write_profile(
        tmp_path / "cheap.json", dispatch=1.0, source="profile-cheap"
    )
    costly = _write_profile(
        tmp_path / "costly.json", dispatch=1.0e12, source="profile-costly"
    )
    with Session(CompareOptions(cost_profile=cheap)) as s_cheap, \
            Session(CompareOptions(cost_profile=costly)) as s_costly:
        plan_cheap = s_cheap.explain(pairs_request_factory(cheap))
        plan_costly = s_costly.explain(pairs_request_factory(costly))
        # Interleave: re-planning the first session after the second one
        # resolved must not be influenced by the second's profile.
        plan_cheap_again = s_cheap.explain(pairs_request_factory(cheap))
    assert plan_cheap.calibration == "profile-cheap"
    assert plan_costly.calibration == "profile-costly"
    assert plan_cheap.shard_pairs < plan_costly.shard_pairs
    assert plan_cheap_again.shard_pairs == plan_cheap.shard_pairs
    # Nothing was installed process-wide by either session.
    assert cost._active_calibration is cost._UNLOADED


def test_explain_with_profile_leaves_later_sessions_unchanged(
    tmp_path, pairs_request_factory
):
    """A profiled explain() between two profile-less ones changes nothing."""
    profiled = _write_profile(
        tmp_path / "p.json", dispatch=1.0e12, source="profile-loud"
    )
    before = explain(pairs_request_factory(None))
    middle = explain(pairs_request_factory(profiled))
    after = explain(pairs_request_factory(None))
    assert middle.calibration == "profile-loud"
    assert before.calibration == after.calibration == "modeled"
    assert before.shard_pairs == after.shard_pairs
    assert before.coalesce_pairs == after.coalesce_pairs
    # The profile did change the middle plan's sizing — the no-leak
    # asserts above are not vacuous.
    assert middle.coalesce_pairs != before.coalesce_pairs
    # The profile-less plans resolved the environment (None); the loud
    # profile was never installed process-wide.
    assert cost.active_calibration() is None


def test_auto_session_threads_its_profile_into_the_dispatcher(tmp_path):
    """The auto backend receives the session's calibration explicitly."""
    profile = _write_profile(
        tmp_path / "auto.json", dispatch=2.0e7, source="profile-auto"
    )
    with Session(CompareOptions(backend="auto", cost_profile=profile)) as s:
        backend = s.backend
        assert backend.calibration is not None
        assert backend.calibration.source == "profile-auto"
    assert cost._active_calibration is cost._UNLOADED


def test_close_leaves_process_calibration_untouched(tmp_path):
    """close() must not clear (or set) the environment-resolved profile."""
    profile = _write_profile(
        tmp_path / "env.json", dispatch=3.0e7, source="profile-env"
    )
    # Simulate an environment-configured process-wide profile.
    env_cal = cost.load_calibration(profile)
    cost.set_calibration(env_cal)
    session = Session(CompareOptions(cost_profile=profile))
    session.close()
    assert cost.active_calibration() is env_cal
