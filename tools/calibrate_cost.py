#!/usr/bin/env python
"""Fit cost-model constants from timed runs into a JSON profile.

Thin command-line wrapper over :mod:`repro.gpu.calibrate` (also
reachable as ``repro calibrate``).  The profile captures what the
backend-scaling and service-throughput benchmark trajectories measure —
cycles per wall second, worker spin-up, remote shard dispatch — so
``recommend_backend`` / ``recommend_batch_pairs`` /
``recommend_shard_pairs`` can weigh modeled compute against *this
host's* overheads:

    PYTHONPATH=src python tools/calibrate_cost.py --quick
    export REPRO_COST_PROFILE=benchmarks/reports/cost_profile.json

Without the environment variable every recommender keeps the modeled
constants; a variable pointing at a missing or malformed profile is a
loud ``DeviceError`` (never a silent fallback to stale policy).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.gpu.calibrate import run_calibration, write_profile  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("benchmarks/reports/cost_profile.json"),
        help="where to write the profile",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller workload (noisier constants, much faster)",
    )
    args = parser.parse_args(argv)
    profile = run_calibration(quick=args.quick)
    path = write_profile(profile, args.output)
    for key, value in profile.as_dict().items():
        print(f"{key:24s} {value}")
    print(f"cost profile -> {path}")
    print(f"  export REPRO_COST_PROFILE={path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
