#!/usr/bin/env python3
"""Guard the public API surface — shim over ``tools.reprolint``.

The snapshot/diff machinery now lives in
``tools/reprolint/api_surface.py`` as checker RL801; this entry point
keeps the historical interface — ``python tools/check_api_surface.py``
(verify) and ``--update`` (rewrite ``tools/api_surface.json``), plus
the ``MANIFEST`` / ``PUBLIC_MODULES`` / ``snapshot`` / ``diff`` names
the tier-1 tests import.

A *deliberate* surface change ships with the regenerated manifest in
the same commit, which makes the diff reviewable exactly where it
matters.  Prefer ``python -m tools.reprolint`` for the full suite.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

from tools.reprolint.api_surface import (  # noqa: E402
    PUBLIC_MODULES,
    diff,
    snapshot,
)

MANIFEST = Path(__file__).resolve().parent / "api_surface.json"

__all__ = ["MANIFEST", "PUBLIC_MODULES", "snapshot", "diff", "main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the manifest from the current surface",
    )
    args = parser.parse_args(argv)

    src = _REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))

    actual = snapshot()
    if args.update:
        MANIFEST.write_text(
            json.dumps(actual, indent=2, sort_keys=True) + "\n"
        )
        print(f"api surface manifest updated: {MANIFEST}")
        return 0

    if not MANIFEST.exists():
        print(
            f"missing manifest {MANIFEST}; run "
            "`python tools/check_api_surface.py --update`"
        )
        return 1
    expected = json.loads(MANIFEST.read_text())
    problems = diff(expected, actual)
    if not problems:
        print(
            f"api surface intact: {sum(len(v) for v in actual.values())} "
            f"symbols across {len(actual)} modules match the manifest"
        )
        return 0
    print("api surface drifted from tools/api_surface.json:")
    for problem in problems:
        print(f"  {problem}")
    print(
        "deliberate change? regenerate with "
        "`python tools/check_api_surface.py --update` and commit the diff"
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
