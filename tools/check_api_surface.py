#!/usr/bin/env python3
"""Guard the public API surface: signatures match the checked-in manifest.

The session-centric front door (``repro.Session`` / ``CompareRequest``)
is the seam every consumer — CLI, service protocol, library users —
depends on.  This tool snapshots the public surface of the front-door
modules (every ``__all__`` symbol with its signature; dataclasses with
their field list) and compares it against ``tools/api_surface.json``.
An accidental rename, a dropped symbol, a changed default, or a new
required parameter fails CI next to the kernel-seam guard.

Run from the repository root::

    python tools/check_api_surface.py            # verify (CI mode)
    python tools/check_api_surface.py --update   # rewrite the manifest

A *deliberate* surface change ships with the regenerated manifest in the
same commit, which makes the diff reviewable exactly where it matters.
"""

from __future__ import annotations

import argparse
import dataclasses
import importlib
import inspect
import json
import re
import sys
from pathlib import Path

MANIFEST = Path(__file__).resolve().parent / "api_surface.json"

# The public front doors.  Internal packages (pixelbox engines, exact
# overlay, experiments) evolve freely; these are the modules external
# consumers import from.
PUBLIC_MODULES = (
    "repro",
    "repro.api",
    "repro.session",
    "repro.errors",
    "repro.backends",
    "repro.cache",
    "repro.service",
    "repro.cluster",
    "repro.metrics.jaccard",
    "repro.pixelbox.common",
    "repro.pipeline.engine",
)


_ADDRESS = re.compile(r" at 0x[0-9a-fA-F]+")


def _signature(obj) -> str:
    try:
        sig = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "<unreadable>"
    # Sentinel defaults (`_UNSET = object()`) repr with a memory address;
    # normalize so the snapshot is stable across processes.
    return _ADDRESS.sub(" at 0x…", sig)


def _describe_class(cls) -> dict:
    entry: dict = {"kind": "class"}
    if dataclasses.is_dataclass(cls):
        entry["kind"] = "dataclass"
        entry["fields"] = {
            f.name: _field_default(f) for f in dataclasses.fields(cls)
        }
    else:
        entry["init"] = _signature(cls.__init__)
    methods = {}
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_"):
            continue
        if callable(member):
            methods[name] = _signature(member)
        elif isinstance(member, property):
            methods[name] = "<property>"
        elif isinstance(member, (classmethod, staticmethod)):
            methods[name] = _signature(member.__func__)
    if methods:
        entry["methods"] = methods
    return entry


def _field_default(f: dataclasses.Field) -> str:
    if f.default is not dataclasses.MISSING:
        return repr(f.default)
    if f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return f"<factory {f.default_factory.__name__}>"
    return "<required>"


def _describe(obj) -> object:
    if inspect.isclass(obj):
        return _describe_class(obj)
    if callable(obj):
        return {"kind": "function", "signature": _signature(obj)}
    if inspect.ismodule(obj):
        return {"kind": "module"}
    return {"kind": "value", "type": type(obj).__name__}


def snapshot() -> dict:
    """The current public surface, module by module."""
    surface: dict = {}
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        if exported is None:
            raise SystemExit(
                f"public module {module_name} has no __all__ — the surface "
                "guard needs an explicit export list"
            )
        symbols = {}
        for name in sorted(exported):
            obj = getattr(module, name)
            symbols[name] = _describe(obj)
        surface[module_name] = symbols
    return surface


def diff(expected: dict, actual: dict) -> list[str]:
    """Human-readable mismatches between two surface snapshots."""
    problems: list[str] = []
    for module in sorted(set(expected) | set(actual)):
        if module not in actual:
            problems.append(f"module {module} disappeared from the surface")
            continue
        if module not in expected:
            problems.append(
                f"module {module} is new — run with --update to record it"
            )
            continue
        exp, act = expected[module], actual[module]
        for symbol in sorted(set(exp) | set(act)):
            if symbol not in act:
                problems.append(f"{module}.{symbol}: removed from __all__")
            elif symbol not in exp:
                problems.append(
                    f"{module}.{symbol}: added (run --update to record)"
                )
            elif exp[symbol] != act[symbol]:
                problems.append(
                    f"{module}.{symbol}: signature changed\n"
                    f"    manifest: {json.dumps(exp[symbol], sort_keys=True)}\n"
                    f"    current : {json.dumps(act[symbol], sort_keys=True)}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the manifest from the current surface",
    )
    args = parser.parse_args(argv)

    src = Path(__file__).resolve().parent.parent / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))

    actual = snapshot()
    if args.update:
        MANIFEST.write_text(
            json.dumps(actual, indent=2, sort_keys=True) + "\n"
        )
        print(f"api surface manifest updated: {MANIFEST}")
        return 0

    if not MANIFEST.exists():
        print(
            f"missing manifest {MANIFEST}; run "
            "`python tools/check_api_surface.py --update`"
        )
        return 1
    expected = json.loads(MANIFEST.read_text())
    problems = diff(expected, actual)
    if not problems:
        print(
            f"api surface intact: {sum(len(v) for v in actual.values())} "
            f"symbols across {len(actual)} modules match the manifest"
        )
        return 0
    print("api surface drifted from tools/api_surface.json:")
    for problem in problems:
        print(f"  {problem}")
    print(
        "deliberate change? regenerate with "
        "`python tools/check_api_surface.py --update` and commit the diff"
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
