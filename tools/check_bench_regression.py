#!/usr/bin/env python3
"""Gate backend throughput against the committed benchmark baseline.

``benchmarks/test_backend_scaling.py`` writes a machine-readable report
(``benchmarks/reports/BENCH_backend_scaling.json``) with one
``pairs_per_second`` figure per ``(backend, workers)`` configuration.
This tool compares a freshly produced report against the committed
baseline (``benchmarks/baselines/BENCH_backend_scaling.json``) and
fails when any configuration's throughput drops below
``min_ratio * baseline`` — a perf regression surfaced in CI with the
offending configuration named, instead of a silent drift nobody reads
the raw tables for.

The tolerance band is deliberately wide by default (``--min-ratio
0.5``): CI machines are noisy and shared, so the gate exists to catch
"multiprocess is suddenly 4x slower" class regressions, not 5% jitter.
Configurations present in only one of the two reports are reported but
never fail the gate (new backends appear, optional substrates come and
go with the host).

The gate also covers the service benchmark
(``benchmarks/reports/BENCH_service_throughput.json``): its
``warm_speedup`` — warm-service requests/s over per-call-construction
requests/s — must stay above an absolute floor (``--min-warm-speedup``,
default 2.0).  That ratio is what the service tier exists to deliver
(amortised backend construction), so it is gated as a ratio rather than
against a committed baseline: it is already machine-normalised.  A
missing service report is a note, not a failure — the scaling gate
stays usable on its own.

The cluster benchmark (``benchmarks/reports/BENCH_cluster_scaling.json``)
is gated the same machine-normalised way: every ``cluster`` row's
``pairs_per_second`` is compared against the *same report's* local
(``vectorized``) row.  The wire protocol, table push, and shard
round-trips must never cost more than ``1 - min_cluster_ratio`` of
local throughput on the same machine at the same moment — a cheap,
host-independent canary for "the framing got quadratically slower"
class regressions.  No absolute floor is possible (single-core CI hosts
legitimately see ~1.0x), and a missing cluster report is a note, not a
failure.

Run from the repository root::

    python tools/check_bench_regression.py                # default paths
    python tools/check_bench_regression.py --min-ratio 0.4
    python tools/check_bench_regression.py FRESH BASELINE
    python tools/check_bench_regression.py --service REPORT.json
    python tools/check_bench_regression.py --cluster REPORT.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FRESH = REPO / "benchmarks" / "reports" / "BENCH_backend_scaling.json"
BASELINE = REPO / "benchmarks" / "baselines" / "BENCH_backend_scaling.json"
SERVICE = REPO / "benchmarks" / "reports" / "BENCH_service_throughput.json"
CLUSTER = REPO / "benchmarks" / "reports" / "BENCH_cluster_scaling.json"

#: Fresh throughput below this fraction of baseline fails the gate.
DEFAULT_MIN_RATIO = 0.5

#: A warm service must answer at least this many times faster than
#: constructing the backend per call, or pooling has regressed.
DEFAULT_MIN_WARM_SPEEDUP = 2.0

#: Every cluster row must reach this fraction of the same report's
#: local throughput.  Deliberately forgiving: the gate is for "the
#: wire tier collapsed", not for scheduling jitter on shared hosts.
DEFAULT_MIN_CLUSTER_RATIO = 0.3


def load_rates(path: Path) -> dict[tuple[str, int], float]:
    """``{(backend, workers): pairs_per_second}`` from one report."""
    report = json.loads(path.read_text())
    rates: dict[tuple[str, int], float] = {}
    for row in report.get("backends", []):
        key = (str(row["backend"]), int(row["workers"]))
        rates[key] = float(row["pairs_per_second"])
    if not rates:
        raise ValueError(f"{path}: no backend rows")
    return rates


def compare(
    fresh: dict[tuple[str, int], float],
    baseline: dict[tuple[str, int], float],
    min_ratio: float,
) -> tuple[list[str], list[str]]:
    """``(failures, notes)`` of fresh throughput vs baseline."""
    failures: list[str] = []
    notes: list[str] = []
    for key in sorted(baseline):
        name = f"{key[0]} (workers={key[1]})"
        if key not in fresh:
            notes.append(f"{name}: in baseline only — skipped")
            continue
        ratio = fresh[key] / baseline[key]
        line = (
            f"{name}: {fresh[key]:.0f} pairs/s vs baseline "
            f"{baseline[key]:.0f} ({ratio:.2f}x)"
        )
        if ratio < min_ratio:
            failures.append(f"{line} — below {min_ratio:.2f}x floor")
        else:
            notes.append(line)
    for key in sorted(set(fresh) - set(baseline)):
        notes.append(
            f"{key[0]} (workers={key[1]}): not in baseline — skipped"
        )
    return failures, notes


def load_warm_speedup(path: Path) -> float:
    """``warm_speedup`` from one service-throughput report.

    Falls back to recomputing the ratio from the ``modes`` section, so
    reports written before the field existed still gate.
    """
    report = json.loads(path.read_text())
    if "warm_speedup" in report:
        return float(report["warm_speedup"])
    modes = report["modes"]
    return float(
        modes["warm_service"]["requests_per_second"]
        / modes["per_call_construction"]["requests_per_second"]
    )


def check_service(
    speedup: float, min_speedup: float
) -> tuple[list[str], list[str]]:
    """``(failures, notes)`` of the warm/cold service ratio vs its floor."""
    line = (
        f"service warm_speedup: {speedup:.2f}x warm vs per-call "
        f"construction"
    )
    if speedup < min_speedup:
        return [f"{line} — below {min_speedup:.2f}x floor"], []
    return [], [line]


def load_cluster_rows(path: Path) -> list[dict]:
    """The ``rows`` list of one cluster-scaling report."""
    report = json.loads(path.read_text())
    rows = report.get("rows", [])
    if not rows:
        raise ValueError(f"{path}: no cluster rows")
    return rows


def check_cluster(
    rows: list[dict], min_ratio: float
) -> tuple[list[str], list[str]]:
    """``(failures, notes)`` of cluster rows vs the report's local row.

    Machine-normalised like the service gate: both numerator and
    denominator come from the same run on the same host, so the ratio
    survives CI hardware churn where an absolute floor could not.
    """
    local = next(
        (
            float(r["pairs_per_second"])
            for r in rows
            if str(r.get("executor", "")).startswith("vectorized")
        ),
        None,
    )
    if local is None or local <= 0:
        return (["cluster report has no local (vectorized) row"], [])
    failures: list[str] = []
    notes: list[str] = []
    for row in rows:
        if not str(row.get("executor", "")).startswith("cluster"):
            continue
        workers = int(row.get("workers", 0))
        ratio = float(row["pairs_per_second"]) / local
        line = (
            f"cluster (workers={workers}): "
            f"{float(row['pairs_per_second']):.0f} pairs/s, "
            f"{ratio:.2f}x of local"
        )
        if ratio < min_ratio:
            failures.append(f"{line} — below {min_ratio:.2f}x floor")
        else:
            notes.append(line)
    if not failures and not notes:
        failures.append("cluster report has no cluster rows")
    return failures, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh", nargs="?", type=Path, default=FRESH,
        help="freshly produced BENCH_backend_scaling.json",
    )
    parser.add_argument(
        "baseline", nargs="?", type=Path, default=BASELINE,
        help="committed baseline report to gate against",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=DEFAULT_MIN_RATIO,
        help="fail when fresh/baseline throughput drops below this "
        f"(default {DEFAULT_MIN_RATIO})",
    )
    parser.add_argument(
        "--service", type=Path, default=SERVICE,
        help="BENCH_service_throughput.json to gate (skipped if absent)",
    )
    parser.add_argument(
        "--min-warm-speedup", type=float, default=DEFAULT_MIN_WARM_SPEEDUP,
        help="fail when the service's warm/cold ratio drops below this "
        f"(default {DEFAULT_MIN_WARM_SPEEDUP})",
    )
    parser.add_argument(
        "--cluster", type=Path, default=CLUSTER,
        help="BENCH_cluster_scaling.json to gate (skipped if absent)",
    )
    parser.add_argument(
        "--min-cluster-ratio", type=float,
        default=DEFAULT_MIN_CLUSTER_RATIO,
        help="fail when a cluster row drops below this fraction of the "
        f"same report's local throughput (default "
        f"{DEFAULT_MIN_CLUSTER_RATIO})",
    )
    args = parser.parse_args(argv)
    try:
        fresh = load_rates(args.fresh)
        baseline = load_rates(args.baseline)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"cannot load benchmark reports: {exc}", file=sys.stderr)
        return 2
    failures, notes = compare(fresh, baseline, args.min_ratio)
    if args.service.exists():
        try:
            speedup = load_warm_speedup(args.service)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"cannot load service report: {exc}", file=sys.stderr)
            return 2
        svc_failures, svc_notes = check_service(
            speedup, args.min_warm_speedup
        )
        failures += svc_failures
        notes += svc_notes
    else:
        notes.append(f"service report {args.service} absent — skipped")
    if args.cluster.exists():
        try:
            rows = load_cluster_rows(args.cluster)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"cannot load cluster report: {exc}", file=sys.stderr)
            return 2
        cl_failures, cl_notes = check_cluster(
            rows, args.min_cluster_ratio
        )
        failures += cl_failures
        notes += cl_notes
    else:
        notes.append(f"cluster report {args.cluster} absent — skipped")
    for line in notes:
        print(f"  ok  {line}")
    for line in failures:
        print(f"FAIL  {line}", file=sys.stderr)
    if failures:
        print(
            f"\n{len(failures)} configuration(s) regressed below "
            f"{args.min_ratio:.2f}x of baseline",
            file=sys.stderr,
        )
        return 1
    print(f"benchmark gate passed ({len(notes)} configuration(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
