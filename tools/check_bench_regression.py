#!/usr/bin/env python3
"""Gate backend throughput against the committed benchmark baseline.

``benchmarks/test_backend_scaling.py`` writes a machine-readable report
(``benchmarks/reports/BENCH_backend_scaling.json``) with one
``pairs_per_second`` figure per ``(backend, workers)`` configuration.
This tool compares a freshly produced report against the committed
baseline (``benchmarks/baselines/BENCH_backend_scaling.json``) and
fails when any configuration's throughput drops below
``min_ratio * baseline`` — a perf regression surfaced in CI with the
offending configuration named, instead of a silent drift nobody reads
the raw tables for.

The tolerance band is deliberately wide by default (``--min-ratio
0.5``): CI machines are noisy and shared, so the gate exists to catch
"multiprocess is suddenly 4x slower" class regressions, not 5% jitter.
Configurations present in only one of the two reports are reported but
never fail the gate (new backends appear, optional substrates come and
go with the host).

Run from the repository root::

    python tools/check_bench_regression.py                # default paths
    python tools/check_bench_regression.py --min-ratio 0.4
    python tools/check_bench_regression.py FRESH BASELINE
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
FRESH = REPO / "benchmarks" / "reports" / "BENCH_backend_scaling.json"
BASELINE = REPO / "benchmarks" / "baselines" / "BENCH_backend_scaling.json"

#: Fresh throughput below this fraction of baseline fails the gate.
DEFAULT_MIN_RATIO = 0.5


def load_rates(path: Path) -> dict[tuple[str, int], float]:
    """``{(backend, workers): pairs_per_second}`` from one report."""
    report = json.loads(path.read_text())
    rates: dict[tuple[str, int], float] = {}
    for row in report.get("backends", []):
        key = (str(row["backend"]), int(row["workers"]))
        rates[key] = float(row["pairs_per_second"])
    if not rates:
        raise ValueError(f"{path}: no backend rows")
    return rates


def compare(
    fresh: dict[tuple[str, int], float],
    baseline: dict[tuple[str, int], float],
    min_ratio: float,
) -> tuple[list[str], list[str]]:
    """``(failures, notes)`` of fresh throughput vs baseline."""
    failures: list[str] = []
    notes: list[str] = []
    for key in sorted(baseline):
        name = f"{key[0]} (workers={key[1]})"
        if key not in fresh:
            notes.append(f"{name}: in baseline only — skipped")
            continue
        ratio = fresh[key] / baseline[key]
        line = (
            f"{name}: {fresh[key]:.0f} pairs/s vs baseline "
            f"{baseline[key]:.0f} ({ratio:.2f}x)"
        )
        if ratio < min_ratio:
            failures.append(f"{line} — below {min_ratio:.2f}x floor")
        else:
            notes.append(line)
    for key in sorted(set(fresh) - set(baseline)):
        notes.append(
            f"{key[0]} (workers={key[1]}): not in baseline — skipped"
        )
    return failures, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh", nargs="?", type=Path, default=FRESH,
        help="freshly produced BENCH_backend_scaling.json",
    )
    parser.add_argument(
        "baseline", nargs="?", type=Path, default=BASELINE,
        help="committed baseline report to gate against",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=DEFAULT_MIN_RATIO,
        help="fail when fresh/baseline throughput drops below this "
        f"(default {DEFAULT_MIN_RATIO})",
    )
    args = parser.parse_args(argv)
    try:
        fresh = load_rates(args.fresh)
        baseline = load_rates(args.baseline)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"cannot load benchmark reports: {exc}", file=sys.stderr)
        return 2
    failures, notes = compare(fresh, baseline, args.min_ratio)
    for line in notes:
        print(f"  ok  {line}")
    for line in failures:
        print(f"FAIL  {line}", file=sys.stderr)
    if failures:
        print(
            f"\n{len(failures)} configuration(s) regressed below "
            f"{args.min_ratio:.2f}x of baseline",
            file=sys.stderr,
        )
        return 1
    print(f"benchmark gate passed ({len(notes)} configuration(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
