#!/usr/bin/env python3
"""Guard the chunk-kernel seam — shim over ``tools.reprolint``.

The seam invariant (``repro.pixelbox.kernel`` is the only module
invoking ``plan_levels`` / ``stacked_leaf_counts``) now lives in
``tools/reprolint/kernel_seam.py`` as checker RL701, where it runs on
the AST instead of a line regex.  This entry point keeps the historical
interface — ``python tools/check_kernel_seam.py``, plus the
``SEAM_NAMES`` / ``ALLOWLIST`` / ``violations`` names the tier-1 tests
import — so nothing downstream has to move.

Prefer ``python -m tools.reprolint`` for the full invariant suite.
"""

from __future__ import annotations

import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

from tools.reprolint.kernel_seam import (  # noqa: E402
    SEAM_ALLOWLIST as ALLOWLIST,
    SEAM_NAMES,
    seam_violations as violations,
)

__all__ = ["ALLOWLIST", "SEAM_NAMES", "violations", "main"]


def main() -> int:
    src_root = _REPO_ROOT / "src"
    found = violations(src_root)
    if not found:
        print(
            "kernel seam intact: %s only invoked from %s"
            % (", ".join(SEAM_NAMES), ", ".join(sorted(ALLOWLIST)))
        )
        return 0
    print("kernel seam violated — route these through ChunkKernel:")
    for path, lineno, line in found:
        print(f"  {path}:{lineno}: {line}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
