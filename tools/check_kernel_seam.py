#!/usr/bin/env python3
"""Guard the chunk-kernel seam: one module owns the kernel sequence.

``repro.pixelbox.kernel`` must be the only module invoking
``plan_levels`` / ``stacked_leaf_counts`` — that is the structural
guarantee that a fourth hand-rolled copy of the plan+stacked-pixelize
sequence (the drift class behind the latent batched disjoint-pair
crash and the counter misalignment) cannot land silently.
``repro.pixelbox.vectorized`` is allowlisted as the definition site.

Run from the repository root (CI does, and the tier-1 suite wraps it):

    python tools/check_kernel_seam.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

SEAM_NAMES = ("plan_levels", "stacked_leaf_counts")

# path (relative to src/) -> why it may name the kernel entry points
ALLOWLIST = {
    "repro/pixelbox/kernel.py": "the one caller",
    "repro/pixelbox/vectorized.py": "the definition site",
}

_PATTERN = re.compile(r"\b(%s)\b" % "|".join(SEAM_NAMES))


def violations(src_root: Path) -> list[tuple[Path, int, str]]:
    """``(file, line number, line)`` for every out-of-seam mention."""
    found = []
    for path in sorted(src_root.rglob("*.py")):
        rel = path.relative_to(src_root).as_posix()
        if rel in ALLOWLIST:
            continue
        for lineno, line in enumerate(
            path.read_text().splitlines(), start=1
        ):
            if _PATTERN.search(line):
                found.append((path, lineno, line.strip()))
    return found


def main() -> int:
    src_root = Path(__file__).resolve().parent.parent / "src"
    found = violations(src_root)
    if not found:
        print(
            "kernel seam intact: %s only invoked from %s"
            % (", ".join(SEAM_NAMES), ", ".join(sorted(ALLOWLIST)))
        )
        return 0
    print("kernel seam violated — route these through ChunkKernel:")
    for path, lineno, line in found:
        print(f"  {path}:{lineno}: {line}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
