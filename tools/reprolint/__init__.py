"""reprolint — AST-based architectural invariant checks for this repo.

Run from the repository root::

    python -m tools.reprolint

Each invariant is one pluggable :class:`~tools.reprolint.core.Checker`;
intentional exceptions live in ``tools/reprolint_baseline.json`` with a
reason per entry.  See ``README.md`` ("Static analysis & invariants")
for the code table and the rationale behind each invariant.
"""

from __future__ import annotations

from tools.reprolint.api_surface import ApiSurfaceChecker
from tools.reprolint.asyncio_discipline import AsyncioDisciplineChecker
from tools.reprolint.cache_key_coverage import CacheKeyCoverageChecker
from tools.reprolint.core import (
    Checker,
    Finding,
    Project,
    RunResult,
    load_baseline,
    run_checkers,
)
from tools.reprolint.errors_taxonomy import ErrorTaxonomyChecker
from tools.reprolint.hot_path import HotPathPurityChecker
from tools.reprolint.kernel_seam import KernelSeamChecker
from tools.reprolint.lock_discipline import LockDisciplineChecker
from tools.reprolint.protocol_exhaustiveness import (
    ProtocolExhaustivenessChecker,
)

__all__ = [
    "ALL_CHECKERS",
    "ApiSurfaceChecker",
    "AsyncioDisciplineChecker",
    "CacheKeyCoverageChecker",
    "Checker",
    "ErrorTaxonomyChecker",
    "Finding",
    "HotPathPurityChecker",
    "KernelSeamChecker",
    "LockDisciplineChecker",
    "Project",
    "ProtocolExhaustivenessChecker",
    "RunResult",
    "load_baseline",
    "run_checkers",
]

#: Default checker set, in code order.
ALL_CHECKERS: tuple[Checker, ...] = (
    AsyncioDisciplineChecker(),
    LockDisciplineChecker(),
    ProtocolExhaustivenessChecker(),
    CacheKeyCoverageChecker(),
    ErrorTaxonomyChecker(),
    HotPathPurityChecker(),
    KernelSeamChecker(),
    ApiSurfaceChecker(),
)
