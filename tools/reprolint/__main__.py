"""CLI for reprolint: ``python -m tools.reprolint`` from the repo root.

Exit codes: 0 clean (baseline-suppressed findings allowed), 1 fresh
findings, 2 internal error (bad baseline file, checker crash).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.reprolint import ALL_CHECKERS
from tools.reprolint.core import (
    Project,
    load_baseline,
    run_checkers,
    write_baseline,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="AST-based architectural invariant checks.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="repository root to analyze (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline file (default: <root>/tools/reprolint_baseline.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept every current finding into the baseline and exit 0",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="REPORT",
        help="also write findings as JSON (CI artifact)",
    )
    args = parser.parse_args(argv)

    root = args.root.resolve()
    baseline_path = (
        args.baseline
        if args.baseline is not None
        else root / "tools" / "reprolint_baseline.json"
    )
    project = Project(root)
    try:
        baseline = load_baseline(baseline_path)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"reprolint: bad baseline {baseline_path}: {exc}")
        return 2

    try:
        result = run_checkers(
            ALL_CHECKERS, project, baseline, log=print
        )
    except Exception as exc:  # checker crash is an internal error
        print(f"reprolint: internal error: {type(exc).__name__}: {exc}")
        return 2

    if args.write_baseline:
        write_baseline(baseline_path, result.findings)
        print(
            f"baseline written: {baseline_path} "
            f"({len(result.findings)} new entr(y/ies) — add reasons)"
        )
        return 0

    if args.json is not None:
        args.json.write_text(
            json.dumps(
                {
                    "findings": [f.as_dict() for f in result.findings],
                    "suppressed": [
                        f.as_dict() for f in result.suppressed
                    ],
                    "stale_baseline": result.stale,
                },
                indent=2,
            )
            + "\n"
        )

    for entry in result.stale:
        print(
            "reprolint: stale baseline entry (fixed? remove it): "
            f"{entry['code']} {entry['path']} {entry['ident']}"
        )
    if result.clean:
        print(
            f"reprolint clean: {len(result.suppressed)} baselined "
            f"finding(s), 0 fresh"
        )
        return 0
    print(f"reprolint: {len(result.findings)} fresh finding(s):")
    for f in result.findings:
        where = f"{f.path}:{f.line}" if f.line else f.path
        print(f"  {f.code} {where} [{f.ident}] {f.message}")
    print(
        "fix the finding, or — if intentional — add a baseline entry "
        f"with a reason to {baseline_path.name}"
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
