"""RL801: the public API surface matches the checked-in manifest.

The session-centric front door (``repro.Session`` / ``CompareRequest``)
is the seam every consumer — CLI, service protocol, library users —
depends on.  This checker snapshots the public surface of the
front-door modules (every ``__all__`` symbol with its signature;
dataclasses with their field list) by *importing* them, and diffs the
result against ``tools/api_surface.json``.  It is the one checker that
executes repository code rather than parsing it — signatures with
computed defaults cannot be read faithfully from the AST.

A *deliberate* surface change ships with a regenerated manifest
(``python tools/check_api_surface.py --update``) in the same commit.
The checker is skipped when the manifest or the ``src/repro`` package
is absent, so it stays inert over test fixture trees.
"""

from __future__ import annotations

import dataclasses
import importlib
import inspect
import json
import re
import sys

from tools.reprolint.core import Finding, Project

__all__ = [
    "ApiSurfaceChecker",
    "MANIFEST_REL",
    "PUBLIC_MODULES",
    "diff",
    "snapshot",
]

MANIFEST_REL = "tools/api_surface.json"

# The public front doors.  Internal packages (pixelbox engines, exact
# overlay, experiments) evolve freely; these are the modules external
# consumers import from.
PUBLIC_MODULES = (
    "repro",
    "repro.api",
    "repro.session",
    "repro.errors",
    "repro.backends",
    "repro.cache",
    "repro.service",
    "repro.cluster",
    "repro.metrics.jaccard",
    "repro.pixelbox.common",
    "repro.pipeline.engine",
)


_ADDRESS = re.compile(r" at 0x[0-9a-fA-F]+")


def _signature(obj) -> str:
    try:
        sig = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "<unreadable>"
    # Sentinel defaults (`_UNSET = object()`) repr with a memory address;
    # normalize so the snapshot is stable across processes.
    return _ADDRESS.sub(" at 0x…", sig)


def _describe_class(cls) -> dict:
    entry: dict = {"kind": "class"}
    if dataclasses.is_dataclass(cls):
        entry["kind"] = "dataclass"
        entry["fields"] = {
            f.name: _field_default(f) for f in dataclasses.fields(cls)
        }
    else:
        entry["init"] = _signature(cls.__init__)
    methods = {}
    for name, member in sorted(vars(cls).items()):
        if name.startswith("_"):
            continue
        if callable(member):
            methods[name] = _signature(member)
        elif isinstance(member, property):
            methods[name] = "<property>"
        elif isinstance(member, (classmethod, staticmethod)):
            methods[name] = _signature(member.__func__)
    if methods:
        entry["methods"] = methods
    return entry


def _field_default(f: dataclasses.Field) -> str:
    if f.default is not dataclasses.MISSING:
        return repr(f.default)
    if f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return f"<factory {f.default_factory.__name__}>"
    return "<required>"


def _describe(obj) -> object:
    if inspect.isclass(obj):
        return _describe_class(obj)
    if callable(obj):
        return {"kind": "function", "signature": _signature(obj)}
    if inspect.ismodule(obj):
        return {"kind": "module"}
    return {"kind": "value", "type": type(obj).__name__}


def snapshot() -> dict:
    """The current public surface, module by module."""
    surface: dict = {}
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", None)
        if exported is None:
            raise SystemExit(
                f"public module {module_name} has no __all__ — the surface "
                "guard needs an explicit export list"
            )
        symbols = {}
        for name in sorted(exported):
            obj = getattr(module, name)
            symbols[name] = _describe(obj)
        surface[module_name] = symbols
    return surface


def diff(expected: dict, actual: dict) -> list[str]:
    """Human-readable mismatches between two surface snapshots."""
    problems: list[str] = []
    for module in sorted(set(expected) | set(actual)):
        if module not in actual:
            problems.append(f"module {module} disappeared from the surface")
            continue
        if module not in expected:
            problems.append(
                f"module {module} is new — run with --update to record it"
            )
            continue
        exp, act = expected[module], actual[module]
        for symbol in sorted(set(exp) | set(act)):
            if symbol not in act:
                problems.append(f"{module}.{symbol}: removed from __all__")
            elif symbol not in exp:
                problems.append(
                    f"{module}.{symbol}: added (run --update to record)"
                )
            elif exp[symbol] != act[symbol]:
                problems.append(
                    f"{module}.{symbol}: signature changed\n"
                    f"    manifest: {json.dumps(exp[symbol], sort_keys=True)}\n"
                    f"    current : {json.dumps(act[symbol], sort_keys=True)}"
                )
    return problems


class ApiSurfaceChecker:
    name = "api-surface"
    codes = ("RL801",)

    def check(self, project: Project) -> list[Finding]:
        if not project.exists(MANIFEST_REL):
            return []  # fixture tree, or manifest deliberately absent
        if not project.exists("src/repro/__init__.py"):
            return []
        src = str(project.root / "src")
        if src not in sys.path:
            sys.path.insert(0, src)
        expected = json.loads(project.read(MANIFEST_REL))
        actual = snapshot()
        findings = []
        for problem in diff(expected, actual):
            # First line of the problem doubles as the fingerprint:
            # "repro.api.CompareOptions: signature changed".
            ident = problem.splitlines()[0]
            findings.append(
                Finding(
                    code="RL801",
                    path=MANIFEST_REL,
                    line=0,
                    ident=ident,
                    message=(
                        f"api surface drifted: {problem} (deliberate? "
                        f"`python tools/check_api_surface.py --update`)"
                    ),
                )
            )
        return findings
