"""Small shared AST helpers for the reprolint checkers."""

from __future__ import annotations

import ast

__all__ = [
    "dataclass_fields",
    "find_class",
    "find_function",
    "string_tuple_constant",
    "self_attr",
]


def find_class(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def find_function(
    body: list[ast.stmt], name: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for node in body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and node.name == name:
            return node
    return None


def dataclass_fields(tree: ast.Module, classname: str) -> list[str]:
    """Field names of a dataclass, from its annotated class body.

    Mirrors ``dataclasses.fields`` statically: annotated assignments in
    declaration order, skipping ``ClassVar`` annotations and names that
    carry no annotation (plain class attributes are not fields).
    """
    cls = find_class(tree, classname)
    if cls is None:
        return []
    fields: list[str] = []
    for node in cls.body:
        if not isinstance(node, ast.AnnAssign):
            continue
        if not isinstance(node.target, ast.Name):
            continue
        annotation = ast.unparse(node.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append(node.target.id)
    return fields


def string_tuple_constant(tree: ast.Module, name: str) -> list[str] | None:
    """The string elements of a module-level ``NAME = ("a", "b", ...)``."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                value = node.value
                if isinstance(value, (ast.Tuple, ast.List)):
                    out = []
                    for elt in value.elts:
                        if isinstance(elt, ast.Constant) and isinstance(
                            elt.value, str
                        ):
                            out.append(elt.value)
                    return out
    return None


def self_attr(node: ast.expr) -> str | None:
    """``X`` when ``node`` is ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None
