"""RL101: no blocking calls inside ``async def`` bodies of the service.

The comparison service is asyncio-native: the event loop must stay free
to accept, reject, and time out requests while a batch runs on the
executor thread.  One blocking call inside a coroutine stalls every
connection at once — the failure mode is global, and invisible until
load.  This checker statically forbids the known blocking primitives
inside ``async def`` bodies under ``src/repro/service/``:

* ``time.sleep`` (use ``asyncio.sleep``)
* synchronous ``socket.*`` module calls
* ``subprocess.run`` / ``call`` / ``check_*`` / ``Popen``
* synchronous file I/O via the ``open`` builtin
* un-awaited ``.acquire()`` without ``timeout=`` / ``blocking=False``
  (a ``threading.Lock`` acquired on the loop; ``asyncio.Lock.acquire``
  is awaited and therefore exempt)

CPU-bound work belongs behind ``loop.run_in_executor`` — every existing
dispatch path already does this.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Finding, Project

__all__ = ["AsyncioDisciplineChecker"]

_SUBPROCESS_BLOCKING = {
    "run", "call", "check_call", "check_output", "Popen"
}


def _blocking_reason(call: ast.Call) -> tuple[str, str] | None:
    """``(token, why)`` when ``call`` blocks the event loop."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open", "synchronous file I/O (`open`) on the event loop"
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        module, attr = func.value.id, func.attr
        if module == "time" and attr == "sleep":
            return (
                "time.sleep",
                "`time.sleep` blocks the loop (use `asyncio.sleep`)",
            )
        if module == "socket":
            return (
                f"socket.{attr}",
                f"synchronous `socket.{attr}` call on the event loop",
            )
        if module == "subprocess" and attr in _SUBPROCESS_BLOCKING:
            return (
                f"subprocess.{attr}",
                f"`subprocess.{attr}` blocks the loop",
            )
    return None


def _acquire_reason(call: ast.Call) -> tuple[str, str] | None:
    """Un-awaited ``.acquire()`` with no timeout is a loop stall."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "acquire"):
        return None
    for kw in call.keywords:
        if kw.arg in ("timeout", "blocking"):
            return None
    if call.args:  # positional blocking/timeout argument
        return None
    return (
        "acquire",
        "un-awaited `.acquire()` without a timeout can block the loop",
    )


class _AsyncBodyVisitor(ast.NodeVisitor):
    """Collects blocking calls inside one ``async def`` body.

    Nested function definitions (sync or async) are their own scopes —
    a sync helper defined inside a coroutine runs wherever it is
    called, which may be an executor thread — so recursion stops there.
    """

    def __init__(self) -> None:
        self.hits: list[tuple[int, str, str]] = []
        self._awaited: set[int] = set()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # new scope

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return  # new scope

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return  # called elsewhere, possibly off-loop

    def visit_Await(self, node: ast.Await) -> None:
        if isinstance(node.value, ast.Call):
            self._awaited.add(id(node.value))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        hit = _blocking_reason(node)
        if hit is None and id(node) not in self._awaited:
            hit = _acquire_reason(node)
        if hit is not None:
            self.hits.append((node.lineno, *hit))
        self.generic_visit(node)


class AsyncioDisciplineChecker:
    name = "asyncio-discipline"
    codes = ("RL101",)

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for rel in project.source_files("src/repro/service"):
            tree = project.tree(rel)
            if tree is None:
                continue
            for node in ast.walk(tree):
                if not isinstance(node, ast.AsyncFunctionDef):
                    continue
                visitor = _AsyncBodyVisitor()
                for stmt in node.body:
                    visitor.visit(stmt)
                for line, token, reason in visitor.hits:
                    findings.append(
                        Finding(
                            code="RL101",
                            path=rel,
                            line=line,
                            ident=f"{node.name}:{token}",
                            message=f"async def {node.name}: {reason}",
                        )
                    )
        return findings
