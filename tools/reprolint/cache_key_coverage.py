"""RL4xx: every execution-affecting field reaches cache-key derivation.

The result cache's correctness story is that a key equals another key
exactly when the computation would be bit-for-bit identical.  That story
has two statically checkable halves:

1. **Dynamic derivation stays dynamic** (RL402).  ``cache/keys.py``
   builds tokens by iterating ``dataclasses.fields`` — adding a field to
   ``ExecutionPolicy`` / ``LaunchConfig`` auto-invalidates.  The same
   goes for ``CompareOptions.to_dict`` (the request-key payload).  If
   either is ever rewritten with a hard-coded field list, a new field
   silently stops reaching the key: stale hits with no failing test
   until someone compares results.  The checker flags the rewrite
   itself, and — when a hard-coded list exists — every field it misses.

2. **Hard-coded mirror lists stay complete** (RL401).  Three places
   intentionally enumerate another dataclass's fields:
   ``wire._CONFIG_FIELDS`` and ``api/request.py WIRE_CONFIG_FIELDS``
   mirror ``LaunchConfig``, ``worker.TABLE_FIELDS`` mirrors
   ``EdgeTable``, and ``CompareOptions.launch_config()`` must forward
   every ``LaunchConfig`` field.  A field added on one side but not the
   other ships configs that silently drop a knob over the wire.

Fields excluded *on purpose* go on ``EXCLUDED_FIELDS`` below with a
comment saying why — the checker forces the conversation into a diff.
"""

from __future__ import annotations

import ast

from tools.reprolint.astutil import (
    dataclass_fields,
    find_class,
    find_function,
    string_tuple_constant,
)
from tools.reprolint.core import Finding, Project

__all__ = ["CacheKeyCoverageChecker", "EXCLUDED_FIELDS"]

_KEYS = "src/repro/cache/keys.py"
_OPTIONS = "src/repro/api/options.py"
_REQUEST = "src/repro/api/request.py"
_WIRE = "src/repro/cluster/wire.py"
_WORKER = "src/repro/cluster/worker.py"
_COMMON = "src/repro/pixelbox/common.py"
_VECTORIZED = "src/repro/pixelbox/vectorized.py"

#: Fields deliberately excluded from key derivation, with the reason.
#: An entry here is the *only* sanctioned way to keep a field out of a
#: cache key; everything else must flow or fail RL402.
EXCLUDED_FIELDS: dict[str, dict[str, str]] = {
    # No exclusions today: CompareOptions serializes every field into
    # to_dict() (trace/trace_out included — over-keying is safe, a
    # traced request simply caches under its own key), and the policy/
    # config tokens enumerate their dataclasses dynamically.
}


def _calls_dataclass_fields(node: ast.AST) -> bool:
    """Whether ``dataclasses.fields(...)`` / ``fields(...)`` is called."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Attribute) and func.attr == "fields":
            return True
        if isinstance(func, ast.Name) and func.id == "fields":
            return True
    return False


def _calls_function(node: ast.AST, name: str) -> bool:
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if isinstance(func, ast.Name) and func.id == name:
            return True
        if isinstance(func, ast.Attribute) and func.attr == name:
            return True
    return False


def _named_strings(node: ast.AST) -> set[str]:
    """Every string constant in a subtree (a hard-coded field list)."""
    return {
        sub.value
        for sub in ast.walk(node)
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
    }


def _keyword_args(call: ast.Call) -> set[str]:
    return {kw.arg for kw in call.keywords if kw.arg is not None}


class CacheKeyCoverageChecker:
    name = "cache-key-coverage"
    codes = ("RL401", "RL402")

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_dynamic_tokens(project))
        findings.extend(self._check_options_serialization(project))
        findings.extend(self._check_mirror_lists(project))
        return findings

    # -- half 1: dynamic derivation stays dynamic ----------------------
    def _check_dynamic_tokens(self, project: Project) -> list[Finding]:
        tree = project.tree(_KEYS)
        if tree is None:
            return []
        findings: list[Finding] = []
        field_token = find_function(tree.body, "_field_token")
        if field_token is None or not _calls_dataclass_fields(field_token):
            findings.append(
                Finding(
                    code="RL402",
                    path=_KEYS,
                    line=(
                        field_token.lineno if field_token is not None else 0
                    ),
                    ident="_field_token:dynamic",
                    message=(
                        "_field_token must iterate dataclasses.fields() "
                        "so new ExecutionPolicy/LaunchConfig fields "
                        "auto-invalidate cache keys"
                    ),
                )
            )
        for name in ("policy_token", "config_token"):
            fn = find_function(tree.body, name)
            if fn is None or not (
                _calls_function(fn, "_field_token")
                or _calls_dataclass_fields(fn)
            ):
                findings.append(
                    Finding(
                        code="RL402",
                        path=_KEYS,
                        line=fn.lineno if fn is not None else 0,
                        ident=f"{name}:dynamic",
                        message=(
                            f"{name} must derive its token from "
                            f"_field_token (dynamic field enumeration)"
                        ),
                    )
                )
        return findings

    def _check_options_serialization(
        self, project: Project
    ) -> list[Finding]:
        tree = project.tree(_OPTIONS)
        if tree is None:
            return []
        cls = find_class(tree, "CompareOptions")
        if cls is None:
            return []
        to_dict = find_function(cls.body, "to_dict")
        if to_dict is None:
            return [
                Finding(
                    code="RL402",
                    path=_OPTIONS,
                    line=cls.lineno,
                    ident="CompareOptions.to_dict:missing",
                    message=(
                        "CompareOptions has no to_dict — request cache "
                        "keys are built from its serialization"
                    ),
                )
            ]
        if _calls_dataclass_fields(to_dict):
            return []  # dynamic: every field reaches the key, present
        # Hard-coded serialization: each field must be named or excluded.
        named = _named_strings(to_dict)
        excluded = EXCLUDED_FIELDS.get("CompareOptions", {})
        findings = []
        for field in dataclass_fields(tree, "CompareOptions"):
            if field in named or field in excluded:
                continue
            findings.append(
                Finding(
                    code="RL402",
                    path=_OPTIONS,
                    line=to_dict.lineno,
                    ident=f"CompareOptions.to_dict:{field}",
                    message=(
                        f"CompareOptions.{field} never reaches to_dict() "
                        f"— request-cache keys would serve stale hits "
                        f"across different {field!r} values (key it or "
                        f"add an EXCLUDED_FIELDS entry with a reason)"
                    ),
                )
            )
        return findings

    # -- half 2: hard-coded mirror lists stay complete -----------------
    def _check_mirror_lists(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        common = project.tree(_COMMON)
        launch_fields = (
            dataclass_fields(common, "LaunchConfig")
            if common is not None
            else []
        )
        if launch_fields:
            findings.extend(
                self._check_string_mirror(
                    project, _WIRE, "_CONFIG_FIELDS", launch_fields
                )
            )
            findings.extend(
                self._check_string_mirror(
                    project, _REQUEST, "WIRE_CONFIG_FIELDS", launch_fields
                )
            )
            findings.extend(
                self._check_launch_config_call(project, launch_fields)
            )
        vectorized = project.tree(_VECTORIZED)
        table_fields = (
            dataclass_fields(vectorized, "EdgeTable")
            if vectorized is not None
            else []
        )
        if table_fields:
            findings.extend(
                self._check_string_mirror(
                    project, _WORKER, "TABLE_FIELDS", table_fields
                )
            )
        return findings

    def _check_string_mirror(
        self,
        project: Project,
        rel: str,
        constant: str,
        source_fields: list[str],
    ) -> list[Finding]:
        tree = project.tree(rel)
        if tree is None:
            return []
        mirror = string_tuple_constant(tree, constant)
        if mirror is None:
            return []
        findings = []
        for field in source_fields:
            if field not in mirror:
                findings.append(
                    Finding(
                        code="RL401",
                        path=rel,
                        line=0,
                        ident=f"{constant}:{field}",
                        message=(
                            f"{constant} is missing field {field!r} of "
                            f"its source dataclass — the mirror list "
                            f"silently drops the knob"
                        ),
                    )
                )
        for extra in mirror:
            if extra not in source_fields:
                findings.append(
                    Finding(
                        code="RL401",
                        path=rel,
                        line=0,
                        ident=f"{constant}:+{extra}",
                        message=(
                            f"{constant} names {extra!r}, which is not a "
                            f"field of its source dataclass"
                        ),
                    )
                )
        return findings

    def _check_launch_config_call(
        self, project: Project, launch_fields: list[str]
    ) -> list[Finding]:
        tree = project.tree(_OPTIONS)
        if tree is None:
            return []
        cls = find_class(tree, "CompareOptions")
        if cls is None:
            return []
        fn = find_function(cls.body, "launch_config")
        if fn is None:
            return []
        passed: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id == "LaunchConfig"
                ):
                    passed |= _keyword_args(node)
        findings = []
        for field in launch_fields:
            if field not in passed:
                findings.append(
                    Finding(
                        code="RL401",
                        path=_OPTIONS,
                        line=fn.lineno,
                        ident=f"launch_config:{field}",
                        message=(
                            f"CompareOptions.launch_config() does not "
                            f"forward LaunchConfig field {field!r} — the "
                            f"knob exists but can never be set from the "
                            f"front door"
                        ),
                    )
                )
        return findings
