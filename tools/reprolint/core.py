"""The reprolint framework: findings, baseline suppression, the runner.

reprolint is a zero-dependency AST-based analysis pass over this
repository's architectural invariants — the seams that keep the paper's
correctness argument (exact PixelBox parity across heterogeneous
executors) true as the codebase grows.  Each invariant is one
:class:`Checker`; each violation is one :class:`Finding` with a stable
code and fingerprint.

Intentional exceptions live in a committed baseline file
(``tools/reprolint_baseline.json``): a finding whose ``(code, path,
ident)`` triple matches a baseline entry is suppressed, every other
finding fails the run.  Baseline entries carry a ``reason`` so the
exception is reviewable where it is declared.  Fingerprints never
include line numbers — moving code around must not churn the baseline.

Run it from the repository root::

    python -m tools.reprolint
    python -m tools.reprolint --json findings.json   # CI artifact
    python -m tools.reprolint --write-baseline       # accept current
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Protocol

__all__ = [
    "Checker",
    "Finding",
    "Project",
    "RunResult",
    "load_baseline",
    "run_checkers",
]


@dataclass(frozen=True)
class Finding:
    """One invariant violation.

    ``ident`` is the stable fingerprint used for baseline matching:
    it names *what* is wrong (a message type, a field, a function),
    never *where on the line* it is, so refactors that move code do not
    invalidate the baseline.
    """

    code: str  # e.g. "RL301"
    path: str  # repo-relative posix path
    line: int  # 1-based; 0 when the finding is file-level
    ident: str  # stable fingerprint within (code, path)
    message: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.code, self.path, self.ident)

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "ident": self.ident,
            "message": self.message,
        }


class Checker(Protocol):
    """One pluggable invariant pass."""

    name: str
    codes: tuple[str, ...]

    def check(self, project: "Project") -> list[Finding]: ...


class Project:
    """One analysis target: a repository root with parsed-tree caching.

    Checkers address files by repo-relative posix path, so the same
    checker runs unchanged over the real repository and over the
    fixture trees the tests build under ``tmp_path``.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root).resolve()
        self._trees: dict[str, ast.Module | None] = {}

    def exists(self, rel: str) -> bool:
        return (self.root / rel).is_file()

    def read(self, rel: str) -> str:
        return (self.root / rel).read_text()

    def tree(self, rel: str) -> ast.Module | None:
        """Parsed AST of ``rel``, or ``None`` if absent/unparseable."""
        if rel not in self._trees:
            path = self.root / rel
            try:
                self._trees[rel] = ast.parse(
                    path.read_text(), filename=str(path)
                )
            except (OSError, SyntaxError):
                self._trees[rel] = None
        return self._trees[rel]

    def source_files(self, under: str = "src/repro") -> list[str]:
        """Repo-relative posix paths of every ``.py`` file under a dir."""
        base = self.root / under
        if not base.is_dir():
            return []
        return sorted(
            p.relative_to(self.root).as_posix()
            for p in base.rglob("*.py")
        )


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def load_baseline(path: Path) -> list[dict]:
    """Baseline entries (``[]`` when the file does not exist)."""
    if not path.is_file():
        return []
    raw = json.loads(path.read_text())
    entries = raw.get("entries", [])
    for entry in entries:
        for field in ("code", "path", "ident", "reason"):
            if field not in entry:
                raise ValueError(
                    f"baseline entry missing {field!r}: {entry}"
                )
    return entries


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    entries = [
        {
            "code": f.code,
            "path": f.path,
            "ident": f.ident,
            "reason": "TODO: justify or fix",
        }
        for f in sorted(findings, key=lambda f: f.key)
    ]
    path.write_text(
        json.dumps({"entries": entries}, indent=2, sort_keys=True) + "\n"
    )


@dataclass
class RunResult:
    """Outcome of one reprolint pass."""

    findings: list[Finding]  # NOT suppressed — these fail the run
    suppressed: list[Finding]  # matched a baseline entry
    stale: list[dict]  # baseline entries that matched nothing

    @property
    def clean(self) -> bool:
        return not self.findings


def run_checkers(
    checkers: Iterable[Checker],
    project: Project,
    baseline: Iterable[dict] = (),
    log: Callable[[str], None] | None = None,
) -> RunResult:
    """Run every checker, then split findings against the baseline."""
    all_findings: list[Finding] = []
    for checker in checkers:
        found = checker.check(project)
        if log is not None:
            log(f"  {checker.name}: {len(found)} finding(s)")
        all_findings.extend(found)

    by_key = {
        (e["code"], e["path"], e["ident"]): e for e in baseline
    }
    matched: set[tuple[str, str, str]] = set()
    fresh: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in all_findings:
        if finding.key in by_key:
            matched.add(finding.key)
            suppressed.append(finding)
        else:
            fresh.append(finding)
    stale = [e for k, e in by_key.items() if k not in matched]
    fresh.sort(key=lambda f: (f.path, f.line, f.code, f.ident))
    return RunResult(findings=fresh, suppressed=suppressed, stale=stale)
