"""RL501: public modules raise only the ``repro.errors`` taxonomy.

Consumers of the front door — CLI, service handlers, cluster
coordinator — catch ``ReproError`` (or a named subclass) to distinguish
"this comparison failed" from "the library is broken".  A bare
``ValueError`` escaping a public module punches through every one of
those handlers and surfaces as a 500 / a dead worker instead of a typed
error frame.  This checker walks the public front-door modules (the
same list the API-surface guard protects) and flags every ``raise`` of
a builtin exception.

Exemptions, because they are the *correct* exception there:

* ``AttributeError`` inside a function named ``__getattr__`` — the
  module-level lazy-import protocol requires it;
* bare ``raise`` (re-raise) and raising a bound variable (propagating a
  caught error object) — the original type is not chosen here.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Finding, Project

__all__ = ["ErrorTaxonomyChecker", "PUBLIC_MODULE_FILES"]

#: File form of check_api_surface.PUBLIC_MODULES — the front doors.
PUBLIC_MODULE_FILES = (
    "src/repro/__init__.py",
    "src/repro/api/__init__.py",
    "src/repro/session.py",
    "src/repro/errors.py",
    "src/repro/backends/__init__.py",
    "src/repro/cache/__init__.py",
    "src/repro/service/__init__.py",
    "src/repro/cluster/__init__.py",
    "src/repro/metrics/jaccard.py",
    "src/repro/pixelbox/common.py",
    "src/repro/pipeline/engine.py",
)

_BUILTIN_EXCEPTIONS = {
    "ArithmeticError", "AssertionError", "AttributeError", "BaseException",
    "BufferError", "ConnectionError", "EOFError", "Exception", "IOError",
    "ImportError", "IndexError", "KeyError", "LookupError", "MemoryError",
    "NameError", "NotImplementedError", "OSError", "OverflowError",
    "RecursionError", "ReferenceError", "RuntimeError", "StopIteration",
    "SystemError", "TimeoutError", "TypeError", "UnicodeError",
    "ValueError", "ZeroDivisionError",
}


def _raised_name(node: ast.Raise) -> str | None:
    """The exception class name a ``raise`` statement names, if any."""
    exc = node.exc
    if exc is None:
        return None  # bare re-raise
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    if isinstance(exc, ast.Attribute):
        return exc.attr
    return None


def _enclosing_functions(tree: ast.Module) -> dict[int, str]:
    """Map ``id(raise node)`` to the name of its innermost function."""
    owner: dict[int, str] = {}

    def walk(node: ast.AST, fn: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                walk(child, child.name)
            else:
                if isinstance(child, ast.Raise):
                    owner[id(child)] = fn or "<module>"
                walk(child, fn)

    walk(tree, None)
    return owner


class ErrorTaxonomyChecker:
    name = "error-taxonomy"
    codes = ("RL501",)

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for rel in PUBLIC_MODULE_FILES:
            tree = project.tree(rel)
            if tree is None:
                continue
            owner = _enclosing_functions(tree)
            for node in ast.walk(tree):
                if not isinstance(node, ast.Raise):
                    continue
                name = _raised_name(node)
                if name is None or name not in _BUILTIN_EXCEPTIONS:
                    continue  # taxonomy class, variable, or re-raise
                fn = owner.get(id(node), "<module>")
                if name == "AttributeError" and fn == "__getattr__":
                    continue  # the lazy-import protocol demands it
                findings.append(
                    Finding(
                        code="RL501",
                        path=rel,
                        line=node.lineno,
                        ident=f"{fn}:{name}",
                        message=(
                            f"public module raises builtin {name} in "
                            f"{fn}() — raise a repro.errors.ReproError "
                            f"subclass so front-door handlers can "
                            f"classify it"
                        ),
                    )
                )
        return findings
