"""RL601: the chunk-kernel hot path stays observability-free.

``pixelbox/kernel.py`` is the per-chunk inner loop; the observability
layer (``repro.obs``) allocates span records, takes locks, and touches
ContextVars.  The agreed seam is exactly one guarded read: ``run_shard``
may call ``current_tracer()`` once (per shard, not per chunk) and only
emit spans when a tracer is active.  Anything more — another obs
import, a second ``current_tracer()`` call, any obs reference from
``run_chunk`` / ``_run_shard`` — reintroduces per-chunk overhead on the
path whose throughput the whole paper reproduction is measuring.
"""

from __future__ import annotations

import ast

from tools.reprolint.core import Finding, Project

__all__ = ["HotPathPurityChecker"]

_KERNEL = "src/repro/pixelbox/kernel.py"
_ALLOWED_IMPORT = "current_tracer"
_ALLOWED_CALLER = "run_shard"
_FORBIDDEN_FUNCS = ("run_chunk", "_run_shard")


def _obs_imports(tree: ast.Module) -> list[tuple[int, str]]:
    """``(line, name)`` for every name imported from ``repro.obs*``."""
    out: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "repro.obs" or module.startswith("repro.obs."):
                for alias in node.names:
                    out.append((node.lineno, alias.asname or alias.name))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro.obs" or alias.name.startswith(
                    "repro.obs."
                ):
                    out.append((node.lineno, alias.asname or alias.name))
    return out


def _function_bodies(
    tree: ast.Module,
) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    return {
        node.name: node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _name_refs(node: ast.AST, name: str) -> list[int]:
    return [
        sub.lineno
        for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and sub.id == name
    ]


class HotPathPurityChecker:
    name = "hot-path-purity"
    codes = ("RL601",)

    def check(self, project: Project) -> list[Finding]:
        tree = project.tree(_KERNEL)
        if tree is None:
            return []
        findings: list[Finding] = []

        for line, imported in _obs_imports(tree):
            if imported == _ALLOWED_IMPORT:
                continue
            findings.append(
                Finding(
                    code="RL601",
                    path=_KERNEL,
                    line=line,
                    ident=f"import:{imported}",
                    message=(
                        f"kernel.py imports {imported!r} from repro.obs "
                        f"— only the guarded `current_tracer` read is "
                        f"allowed on the hot path"
                    ),
                )
            )

        funcs = _function_bodies(tree)

        # The one sanctioned read lives in run_shard; a reference from
        # any other function re-couples the per-chunk loop to obs.
        tracer_lines = _name_refs(tree, _ALLOWED_IMPORT)
        allowed_owner = funcs.get(_ALLOWED_CALLER)
        allowed_lines = (
            set(_name_refs(allowed_owner, _ALLOWED_IMPORT))
            if allowed_owner is not None
            else set()
        )
        import_lines = {line for line, _ in _obs_imports(tree)}
        strays = [
            line
            for line in tracer_lines
            if line not in allowed_lines and line not in import_lines
        ]
        for line in strays:
            findings.append(
                Finding(
                    code="RL601",
                    path=_KERNEL,
                    line=line,
                    ident="call:current_tracer:stray",
                    message=(
                        f"current_tracer referenced outside "
                        f"{_ALLOWED_CALLER}() — the hot path allows "
                        f"exactly one guarded read, in "
                        f"{_ALLOWED_CALLER}"
                    ),
                )
            )
        if len(allowed_lines) > 1:
            findings.append(
                Finding(
                    code="RL601",
                    path=_KERNEL,
                    line=sorted(allowed_lines)[1],
                    ident="call:current_tracer:multiple",
                    message=(
                        f"{_ALLOWED_CALLER}() reads current_tracer "
                        f"{len(allowed_lines)} times — one read per "
                        f"shard, reused across chunks"
                    ),
                )
            )

        # The per-chunk functions must not touch obs at all, even via
        # an attribute path (repro.obs.metrics.counter(...) etc.).
        for fname in _FORBIDDEN_FUNCS:
            fn = funcs.get(fname)
            if fn is None:
                continue
            for sub in ast.walk(fn):
                if isinstance(sub, ast.Attribute) and sub.attr in (
                    "obs",
                ):
                    findings.append(
                        Finding(
                            code="RL601",
                            path=_KERNEL,
                            line=sub.lineno,
                            ident=f"{fname}:obs-ref",
                            message=(
                                f"{fname}() references repro.obs — the "
                                f"per-chunk loop must stay "
                                f"observability-free"
                            ),
                        )
                    )
        return findings
