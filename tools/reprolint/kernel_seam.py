"""RL701: one module owns the chunk-kernel sequence (AST port).

``repro.pixelbox.kernel`` must be the only module invoking
``plan_levels`` / ``stacked_leaf_counts`` — the structural guarantee
that a fourth hand-rolled copy of the plan+stacked-pixelize sequence
(the drift class behind the batched disjoint-pair crash and the
counter misalignment) cannot land silently.  ``vectorized.py`` is
allowlisted as the definition site.

This is the AST-based successor of ``tools/check_kernel_seam.py``
(which now shims to :func:`seam_violations`): instead of a word-regex
over raw lines, it matches actual ``Name`` / ``Attribute`` references,
so a mention in a comment or docstring no longer trips the guard while
a real call through an alias still does.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint.core import Finding, Project

__all__ = ["KernelSeamChecker", "SEAM_NAMES", "SEAM_ALLOWLIST",
           "seam_violations"]

SEAM_NAMES = ("plan_levels", "stacked_leaf_counts")

# path (relative to src/) -> why it may name the kernel entry points
SEAM_ALLOWLIST = {
    "repro/pixelbox/kernel.py": "the one caller",
    "repro/pixelbox/vectorized.py": "the definition site",
}


def _seam_refs(tree: ast.Module) -> list[tuple[int, str]]:
    """``(line, name)`` for every AST reference to a seam name."""
    out: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id in SEAM_NAMES:
            out.append((node.lineno, node.id))
        elif isinstance(node, ast.Attribute) and node.attr in SEAM_NAMES:
            out.append((node.lineno, node.attr))
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name.split(".")[-1] in SEAM_NAMES:
                    out.append(
                        (node.lineno, alias.name.split(".")[-1])
                    )
    return out


def seam_violations(src_root: Path) -> list[tuple[Path, int, str]]:
    """``(file, line number, stripped line)`` per out-of-seam reference.

    Same return shape as the legacy ``check_kernel_seam.violations`` so
    the shim (and its tests) keep working unchanged.
    """
    found: list[tuple[Path, int, str]] = []
    for path in sorted(src_root.rglob("*.py")):
        rel = path.relative_to(src_root).as_posix()
        if rel in SEAM_ALLOWLIST:
            continue
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except (OSError, SyntaxError):
            continue
        lines = path.read_text().splitlines()
        for lineno, _name in sorted(set(_seam_refs(tree))):
            text = lines[lineno - 1].strip() if lineno <= len(lines) else ""
            found.append((path, lineno, text))
    return found


class KernelSeamChecker:
    name = "kernel-seam"
    codes = ("RL701",)

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for rel in project.source_files("src"):
            under_src = rel[len("src/"):]
            if under_src in SEAM_ALLOWLIST:
                continue
            tree = project.tree(rel)
            if tree is None:
                continue
            for lineno, name in sorted(set(_seam_refs(tree))):
                findings.append(
                    Finding(
                        code="RL701",
                        path=rel,
                        line=lineno,
                        ident=f"{name}",
                        message=(
                            f"{name} referenced outside the kernel seam "
                            f"— route chunk work through ChunkKernel"
                        ),
                    )
                )
        return findings
