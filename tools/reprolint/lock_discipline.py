"""RL201: guarded state must only be mutated while holding the lock.

In every class that creates a ``threading.Lock`` / ``RLock`` /
``Condition`` attribute, the set of "guarded" instance attributes is
inferred from usage: an attribute mutated at least once inside a
``with self.<lock>:`` block is guarded.  Any *other* mutation of a
guarded attribute — outside every lock block, in any method but
``__init__`` — is a race waiting for load: the scheduler's speculation
threads, the service executor, and the coordinator's per-worker push
threads all mutate shared client state concurrently.

Attributes never mutated under a lock are out of scope (single-threaded
bookkeeping like ``Session.last_trace`` is legitimate); ``__init__``
runs before the object is shared and is exempt.  Reads are never
flagged — lock-free reads of monotonic counters are an accepted idiom
here (``stats()`` snapshots tolerate torn reads by design).
"""

from __future__ import annotations

import ast

from tools.reprolint.astutil import self_attr
from tools.reprolint.core import Finding, Project

__all__ = ["LockDisciplineChecker"]

_LOCK_FACTORIES = {"Lock", "RLock", "Condition"}

#: Methods whose call mutates their receiver in place.
_MUTATOR_METHODS = {
    "append", "add", "extend", "insert", "remove", "discard", "pop",
    "popitem", "clear", "update", "setdefault", "move_to_end",
    "appendleft", "popleft",
}


def _lock_attrs(cls: ast.ClassDef) -> set[str]:
    """Attributes assigned a ``threading.Lock()``-like object."""
    locks: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        func = value.func
        name = None
        if isinstance(func, ast.Attribute):
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        if name not in _LOCK_FACTORIES:
            continue
        for target in node.targets:
            attr = self_attr(target)
            if attr is not None:
                locks.add(attr)
    return locks


def _mutated_attrs(stmt: ast.stmt) -> list[tuple[str, int]]:
    """``(attr, line)`` for every ``self.X`` this statement mutates.

    Covers assignment (including tuple unpacking and subscripts),
    augmented assignment, deletion, and in-place mutator method calls
    (``self.X.add(...)``).
    """
    out: list[tuple[str, int]] = []

    def targets_of(node: ast.expr) -> None:
        if isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                targets_of(elt)
            return
        base = node
        while isinstance(base, (ast.Subscript, ast.Starred)):
            base = (
                base.value if isinstance(base, ast.Subscript) else base.value
            )
        attr = self_attr(base)
        if attr is not None:
            out.append((attr, node.lineno))

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            targets_of(target)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets_of(stmt.target)
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            targets_of(target)
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
        ):
            attr = self_attr(func.value)
            if attr is not None:
                out.append((attr, stmt.lineno))
    return out


def _holds_lock(stmt: ast.With | ast.AsyncWith, locks: set[str]) -> bool:
    for item in stmt.items:
        attr = self_attr(item.context_expr)
        if attr in locks:
            return True
    return False


def _walk_method(
    body: list[ast.stmt],
    locks: set[str],
    in_lock: bool,
    guarded_sink: list[tuple[str, int]],
    unguarded_sink: list[tuple[str, int]],
) -> None:
    """Classify every ``self.X`` mutation by whether a lock is held."""
    for stmt in body:
        sink = guarded_sink if in_lock else unguarded_sink
        sink.extend(_mutated_attrs(stmt))
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # nested defs execute later, in an unknown context
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = in_lock or _holds_lock(stmt, locks)
            _walk_method(
                stmt.body, locks, inner, guarded_sink, unguarded_sink
            )
            continue
        for child_body in (
            getattr(stmt, "body", None),
            getattr(stmt, "orelse", None),
            getattr(stmt, "finalbody", None),
        ):
            if child_body:
                _walk_method(
                    child_body, locks, in_lock, guarded_sink, unguarded_sink
                )
        for handler in getattr(stmt, "handlers", ()):
            _walk_method(
                handler.body, locks, in_lock, guarded_sink, unguarded_sink
            )


class LockDisciplineChecker:
    name = "lock-discipline"
    codes = ("RL201",)

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for rel in project.source_files("src/repro"):
            tree = project.tree(rel)
            if tree is None:
                continue
            for cls in ast.walk(tree):
                if not isinstance(cls, ast.ClassDef):
                    continue
                findings.extend(self._check_class(rel, cls))
        return findings

    def _check_class(self, rel: str, cls: ast.ClassDef) -> list[Finding]:
        locks = _lock_attrs(cls)
        if not locks:
            return []
        guarded: set[str] = set()
        per_method: dict[str, list[tuple[str, int]]] = {}
        for node in cls.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            in_lock: list[tuple[str, int]] = []
            out_lock: list[tuple[str, int]] = []
            _walk_method(node.body, locks, False, in_lock, out_lock)
            guarded.update(attr for attr, _ in in_lock)
            if node.name != "__init__":
                per_method[node.name] = out_lock
        guarded -= locks
        findings = []
        for method, mutations in per_method.items():
            for attr, line in mutations:
                if attr not in guarded:
                    continue
                findings.append(
                    Finding(
                        code="RL201",
                        path=rel,
                        line=line,
                        ident=f"{cls.name}.{method}:{attr}",
                        message=(
                            f"{cls.name}.{method} mutates "
                            f"`self.{attr}` outside the lock, but other "
                            f"sites guard it with `with self.<lock>`"
                        ),
                    )
                )
        return findings
