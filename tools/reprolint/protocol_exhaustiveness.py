"""RL3xx: every protocol vocabulary entry has both of its ends.

Three vocabularies define what the distributed system can say, and each
entry needs a speaker *and* a listener or it is dead weight — or worse,
a silently unimplemented capability:

* ``wire.MsgType`` members (the cluster's binary frame types) need an
  encode site (passed to a call, i.e. ``send_frame``/``_call``) and a
  decode site (compared against a received frame type) across
  ``worker.py`` + ``coordinator.py``.  RL301 / RL302.
* service ``OPS`` entries (the JSON-lines vocabulary) need a server
  handler (the op literal compared in ``server.py``) and a
  ``ServiceClient`` method (``self._call("<op>", ...)``).  RL311 / RL312.
* ``wire.FEATURE_*`` constants (capability negotiation) must be
  advertised by the worker and gated by the coordinator with an ``in``
  check — a feature nobody gates is used against workers that never
  advertised it.  RL321 / RL322.

Deliberate asymmetries (ops reserved for external tooling) are baseline
entries, each with its reason — visible, reviewed, and fenced off from
accidental new ones.
"""

from __future__ import annotations

import ast

from tools.reprolint.astutil import find_class, string_tuple_constant
from tools.reprolint.core import Finding, Project

__all__ = ["ProtocolExhaustivenessChecker"]

_WIRE = "src/repro/cluster/wire.py"
_WIRE_USERS = (
    "src/repro/cluster/worker.py",
    "src/repro/cluster/coordinator.py",
)
_PROTOCOL = "src/repro/service/protocol.py"
_SERVER = "src/repro/service/server.py"
_CLIENT = "src/repro/service/client.py"


def _msgtype_members(tree: ast.Module) -> list[str]:
    cls = find_class(tree, "MsgType")
    if cls is None:
        return []
    members = []
    for node in cls.body:
        if isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Constant
        ):
            for target in node.targets:
                if isinstance(target, ast.Name) and isinstance(
                    node.value.value, int
                ):
                    members.append(target.id)
    return members


def _feature_constants(tree: ast.Module) -> list[str]:
    out = []
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id.startswith(
                    "FEATURE_"
                ):
                    out.append(target.id)
    return out


def _is_msgtype_ref(node: ast.expr, member: str) -> bool:
    """``wire.MsgType.X`` or ``MsgType.X``."""
    if not (isinstance(node, ast.Attribute) and node.attr == member):
        return False
    value = node.value
    if isinstance(value, ast.Attribute):
        return value.attr == "MsgType"
    if isinstance(value, ast.Name):
        return value.id == "MsgType"
    return False


def _contains_ref(nodes: list[ast.expr], member: str) -> bool:
    for node in nodes:
        for sub in ast.walk(node):
            if _is_msgtype_ref(sub, member):
                return True
    return False


def _msgtype_usage(
    trees: list[ast.Module], members: list[str]
) -> dict[str, tuple[bool, bool]]:
    """``{member: (has_encode_site, has_decode_site)}``."""
    usage = {m: [False, False] for m in members}
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                for member in members:
                    if _contains_ref(list(node.args), member):
                        usage[member][0] = True
            elif isinstance(node, ast.Compare):
                exprs = [node.left, *node.comparators]
                for member in members:
                    if _contains_ref(exprs, member):
                        usage[member][1] = True
    return {m: (e, d) for m, (e, d) in usage.items()}


def _compared_strings(tree: ast.Module) -> set[str]:
    """String literals that appear in comparisons anywhere in a module."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        for expr in (node.left, *node.comparators):
            if isinstance(expr, ast.Constant) and isinstance(
                expr.value, str
            ):
                out.add(expr.value)
    return out


def _client_ops(tree: ast.Module) -> set[str]:
    """First-argument string of every ``self._call("<op>", ...)``."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "_call"):
            continue
        if node.args and isinstance(node.args[0], ast.Constant):
            if isinstance(node.args[0].value, str):
                out.add(node.args[0].value)
    return out


def _feature_refs(tree: ast.Module, feature: str) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute) and node.attr == feature:
            return True
        if isinstance(node, ast.Name) and node.id == feature:
            return True
    return False


def _feature_gated(tree: ast.Module, feature: str) -> bool:
    """A membership test (``FEATURE_X in ...``) guards the capability."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
            continue
        for expr in (node.left, *node.comparators):
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Attribute) and sub.attr == feature:
                    return True
                if isinstance(sub, ast.Name) and sub.id == feature:
                    return True
    return False


class ProtocolExhaustivenessChecker:
    name = "protocol-exhaustiveness"
    codes = ("RL301", "RL302", "RL311", "RL312", "RL321", "RL322")

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_wire(project))
        findings.extend(self._check_service(project))
        return findings

    def _check_wire(self, project: Project) -> list[Finding]:
        wire_tree = project.tree(_WIRE)
        if wire_tree is None:
            return []
        users = [
            t
            for rel in _WIRE_USERS
            if (t := project.tree(rel)) is not None
        ]
        findings: list[Finding] = []
        members = _msgtype_members(wire_tree)
        for member, (enc, dec) in _msgtype_usage(users, members).items():
            if not enc:
                findings.append(
                    Finding(
                        code="RL301",
                        path=_WIRE,
                        line=0,
                        ident=f"MsgType.{member}:encode",
                        message=(
                            f"MsgType.{member} is never sent by worker.py"
                            f"/coordinator.py (no encode site)"
                        ),
                    )
                )
            if not dec:
                findings.append(
                    Finding(
                        code="RL302",
                        path=_WIRE,
                        line=0,
                        ident=f"MsgType.{member}:decode",
                        message=(
                            f"MsgType.{member} is never handled by "
                            f"worker.py/coordinator.py (no decode site)"
                        ),
                    )
                )
        features = _feature_constants(wire_tree)
        worker_tree = project.tree(_WIRE_USERS[0])
        coord_tree = project.tree(_WIRE_USERS[1])
        for feature in features:
            if worker_tree is not None and not _feature_refs(
                worker_tree, feature
            ):
                findings.append(
                    Finding(
                        code="RL321",
                        path=_WIRE,
                        line=0,
                        ident=f"{feature}:advertise",
                        message=(
                            f"wire.{feature} is never advertised by the "
                            f"worker (HELLO_ACK features list)"
                        ),
                    )
                )
            if coord_tree is not None and not _feature_gated(
                coord_tree, feature
            ):
                findings.append(
                    Finding(
                        code="RL322",
                        path=_WIRE,
                        line=0,
                        ident=f"{feature}:gate",
                        message=(
                            f"wire.{feature} has no coordinator gate "
                            f"(`{feature} in ...` membership check)"
                        ),
                    )
                )
        return findings

    def _check_service(self, project: Project) -> list[Finding]:
        proto_tree = project.tree(_PROTOCOL)
        if proto_tree is None:
            return []
        ops = string_tuple_constant(proto_tree, "OPS") or []
        findings: list[Finding] = []
        server_tree = project.tree(_SERVER)
        if server_tree is not None:
            handled = _compared_strings(server_tree)
            for op in ops:
                if op not in handled:
                    findings.append(
                        Finding(
                            code="RL311",
                            path=_PROTOCOL,
                            line=0,
                            ident=f"op:{op}:server",
                            message=(
                                f"service op {op!r} has no handler "
                                f"literal in server.py"
                            ),
                        )
                    )
        client_tree = project.tree(_CLIENT)
        if client_tree is not None:
            called = _client_ops(client_tree)
            for op in ops:
                if op not in called:
                    findings.append(
                        Finding(
                            code="RL312",
                            path=_PROTOCOL,
                            line=0,
                            ident=f"op:{op}:client",
                            message=(
                                f"service op {op!r} has no ServiceClient "
                                f"method (`self._call({op!r}, ...)`)"
                            ),
                        )
                    )
        return findings
